package collector

import (
	"encoding/gob"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/stats"
)

// The TCP/gob query service: how an application's Modeler reaches a
// Collector running as a separate process (the deployment in the paper's
// Figure 2). Virtual-time experiments use the Collector in-process; this
// service exists for daemon mode and is covered by real-socket
// integration tests.

type wireNode struct {
	ID           string
	Kind         int
	InternalBW   float64
	ComputePower float64
	MemoryBytes  float64
}

type wireLink struct {
	A, B     string
	Capacity float64
	Latency  float64
	Global   int
}

type wireTopo struct {
	Nodes        []wireNode
	Links        []wireLink
	DiscoveredAt float64
}

func topoToWire(t *Topology) *wireTopo {
	w := &wireTopo{DiscoveredAt: t.DiscoveredAt}
	for _, id := range t.Graph.Nodes() {
		n := t.Graph.Node(id)
		w.Nodes = append(w.Nodes, wireNode{
			ID: string(n.ID), Kind: int(n.Kind),
			InternalBW: n.InternalBW, ComputePower: n.ComputePower,
			MemoryBytes: n.MemoryBytes,
		})
	}
	for _, l := range t.Graph.Links() {
		w.Links = append(w.Links, wireLink{
			A: string(l.A), B: string(l.B),
			Capacity: l.Capacity, Latency: l.Latency,
			Global: t.GlobalID[l.ID],
		})
	}
	return w
}

func topoFromWire(w *wireTopo) *Topology {
	g := graph.New()
	for _, n := range w.Nodes {
		g.AddNode(graph.Node{
			ID: graph.NodeID(n.ID), Kind: graph.NodeKind(n.Kind),
			InternalBW: n.InternalBW, ComputePower: n.ComputePower,
			MemoryBytes: n.MemoryBytes,
		})
	}
	t := &Topology{Graph: g, GlobalID: make(map[graph.LinkID]int), DiscoveredAt: w.DiscoveredAt}
	for _, l := range w.Links {
		gl := g.AddLink(graph.NodeID(l.A), graph.NodeID(l.B), l.Capacity, l.Latency)
		t.GlobalID[gl.ID] = l.Global
	}
	return t
}

type request struct {
	Op   string // "topo", "util", "samples", "load", "age", "health", "ping"
	Key  ChannelKey
	Span float64
	Node string
}

type response struct {
	Err     string
	Stat    stats.Stat
	Samples []stats.Sample
	Topo    *wireTopo
	Age     float64
	Health  map[string]AgentHealth
}

// DefaultIdleTimeout is how long a connection may sit between requests
// (or mid-frame) before the server drops it: a client that connects and
// sends nothing — or a truncated gob frame — must not pin a goroutine
// and an FD forever.
const DefaultIdleTimeout = 2 * time.Minute

// ErrServerBusy is the typed refusal a server at its connection cap
// answers with instead of silently queueing the client. Clients surface
// it via errors.Is; FailoverSource treats it as "try another replica".
var ErrServerBusy = errors.New("collector: server busy")

// busyMsg is ErrServerBusy's wire form (errors don't cross gob).
var busyMsg = ErrServerBusy.Error()

// ServerConfig tunes the server's lifecycle protections. The zero value
// of each field selects its default.
type ServerConfig struct {
	// IdleTimeout is the per-connection read deadline between (and
	// within) request frames (default DefaultIdleTimeout); negative
	// disables it. It also bounds response writes, so a client that
	// stops reading cannot pin the serving goroutine.
	IdleTimeout time.Duration
	// MaxConns caps concurrently served connections; connections beyond
	// the cap are answered with ErrServerBusy and closed. Zero means
	// unlimited.
	MaxConns int
}

func (sc *ServerConfig) fill() {
	if sc.IdleTimeout == 0 {
		sc.IdleTimeout = DefaultIdleTimeout
	}
}

// Server exposes a Source over TCP.
type Server struct {
	src Source
	cfg ServerConfig
	ln  net.Listener
	wg  sync.WaitGroup

	mu       sync.Mutex
	conns    map[net.Conn]*connState
	draining bool
}

// connState tracks whether a connection is mid-request (the server has
// decoded a request and not yet written its response). Draining closes
// idle connections immediately and lets busy ones finish.
type connState struct {
	busy bool
}

// Serve starts a query server on addr (e.g. "127.0.0.1:0") with default
// lifecycle protections.
func Serve(src Source, addr string) (*Server, error) {
	return ServeConfig(src, addr, ServerConfig{})
}

// ServeConfig starts a query server with explicit lifecycle protections.
func ServeConfig(src Source, addr string, cfg ServerConfig) (*Server, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	s := &Server{src: src, cfg: cfg, ln: ln, conns: make(map[net.Conn]*connState)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately: it stops accepting, force-closes
// active connections (in-flight requests see a write error), and waits
// for all serving goroutines. Use Shutdown for a graceful drain.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	s.draining = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Shutdown drains the server gracefully: it stops accepting, closes
// idle connections, lets in-flight requests finish for up to timeout,
// then force-closes whatever remains and waits for all serving
// goroutines. A non-positive timeout degenerates to Close.
func (s *Server) Shutdown(timeout time.Duration) error {
	err := s.ln.Close()
	s.mu.Lock()
	s.draining = true
	for c, st := range s.conns {
		if !st.busy {
			c.Close() // wakes the blocked Decode; the loop exits
		}
	}
	s.mu.Unlock()

	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			s.mu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.mu.Unlock()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.refuse(conn)
			}()
			continue
		}
		s.conns[conn] = &connState{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// refuse answers one over-cap connection with a typed busy error and
// closes it, so the client fails fast instead of queueing invisibly.
func (s *Server) refuse(conn net.Conn) {
	defer conn.Close()
	if s.cfg.IdleTimeout > 0 {
		conn.SetDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
	// Wait for the first request frame so the refusal pairs with a call
	// the client is actually waiting on, then answer it.
	var req request
	if err := gob.NewDecoder(conn).Decode(&req); err != nil {
		return
	}
	gob.NewEncoder(conn).Encode(&response{Err: busyMsg})
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		s.mu.Lock()
		draining := s.draining
		st := s.conns[conn]
		s.mu.Unlock()
		if draining || st == nil {
			return
		}
		// Idle read deadline: a silent client, or one that sends half a
		// frame and stalls, loses the connection instead of holding it.
		if s.cfg.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
				return
			}
		}
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		s.mu.Lock()
		st.busy = true
		s.mu.Unlock()
		resp := s.handle(&req)
		if s.cfg.IdleTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		err := enc.Encode(resp)
		s.mu.Lock()
		st.busy = false
		s.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// handle answers one request. A panicking Source must cost the client
// one errored response, never the daemon process: every shared-daemon
// deployment (the paper's Figure 2) has this property or doesn't scale
// past its first misbehaving query.
func (s *Server) handle(req *request) (resp *response) {
	resp = &response{}
	defer func() {
		if r := recover(); r != nil {
			log.Printf("collector: recovered panic serving %q: %v", req.Op, r)
			resp = &response{Err: fmt.Sprintf("collector: internal error serving %q: %v", req.Op, r)}
		}
	}()
	switch req.Op {
	case "topo":
		t, err := s.src.Topology()
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Topo = topoToWire(t)
		}
	case "util":
		st, err := s.src.Utilization(req.Key, req.Span)
		if err != nil {
			resp.Err = err.Error()
		}
		resp.Stat = st
	case "samples":
		sm, err := s.src.Samples(req.Key)
		if err != nil {
			resp.Err = err.Error()
		}
		resp.Samples = sm
	case "load":
		st, err := s.src.HostLoad(graph.NodeID(req.Node), req.Span)
		if err != nil {
			resp.Err = err.Error()
		}
		resp.Stat = st
	case "age":
		age, err := s.src.DataAge(req.Key)
		if err != nil {
			resp.Err = err.Error()
		}
		resp.Age = age
	case "health":
		if hs, ok := s.src.(HealthSource); ok {
			h := hs.Health()
			resp.Health = make(map[string]AgentHealth, len(h))
			for id, ah := range h {
				resp.Health[string(id)] = ah
			}
		} else {
			resp.Err = "collector: source does not track health"
		}
	case "ping":
		// Liveness probe: reaching the switch at all is the answer.
	default:
		resp.Err = fmt.Sprintf("collector: unknown op %q", req.Op)
	}
	return resp
}

// DefaultCallTimeout bounds one query round trip (dial + write + read):
// a hung or half-dead server must never block the Modeler forever.
const DefaultCallTimeout = 5 * time.Second

// DefaultRetryBackoff is the pause before the reconnect attempt after a
// failed call, giving a restarting server a moment to rebind.
const DefaultRetryBackoff = 100 * time.Millisecond

// ClientConfig tunes a client's failure behaviour. The zero value of
// each field selects its default.
type ClientConfig struct {
	// CallTimeout is the per-call I/O deadline (default
	// DefaultCallTimeout); negative disables deadlines.
	CallTimeout time.Duration
	// RetryBackoff is the wait between the failed attempt and the one
	// reconnect retry (default DefaultRetryBackoff); negative disables
	// the pause.
	RetryBackoff time.Duration
	// SingleAttempt disables the client's internal reconnect-and-retry.
	// FailoverSource sets it: when other replicas are available, trying
	// one of them beats retrying the replica that just failed.
	SingleAttempt bool
}

func (cc *ClientConfig) fill() {
	if cc.CallTimeout == 0 {
		cc.CallTimeout = DefaultCallTimeout
	}
	if cc.RetryBackoff == 0 {
		cc.RetryBackoff = DefaultRetryBackoff
	}
}

// Client is a Source backed by a remote collector service.
type Client struct {
	addr string
	cfg  ClientConfig

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a collector service with default timeouts.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a collector service with explicit failure
// behaviour.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	c := &Client{addr: addr, cfg: cfg}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) connect() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout())
	if err != nil {
		return fmt.Errorf("collector: %w", err)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

func (c *Client) dialTimeout() time.Duration {
	if c.cfg.CallTimeout < 0 {
		return 0 // no limit
	}
	return c.cfg.CallTimeout
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		return c.conn.Close()
	}
	return nil
}

func (c *Client) call(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	attempt := func() (*response, error) {
		if c.conn == nil {
			if err := c.connect(); err != nil {
				return nil, err
			}
		}
		// Per-call deadline: a hung server surfaces as a timeout error
		// the reconnect path handles, never as a blocked Modeler.
		if c.cfg.CallTimeout > 0 {
			if err := c.conn.SetDeadline(time.Now().Add(c.cfg.CallTimeout)); err != nil {
				return nil, err
			}
		}
		if err := c.enc.Encode(req); err != nil {
			return nil, err
		}
		var resp response
		if err := c.dec.Decode(&resp); err != nil {
			return nil, err
		}
		return &resp, nil
	}
	resp, err := attempt()
	if err != nil {
		// One reconnect after a short backoff: the server may be
		// restarting; retrying instantly tends to race its rebind.
		if c.conn != nil {
			c.conn.Close()
			c.conn = nil
		}
		if c.cfg.SingleAttempt {
			return nil, err
		}
		if c.cfg.RetryBackoff > 0 {
			time.Sleep(c.cfg.RetryBackoff)
		}
		resp, err = attempt()
		if err != nil {
			return nil, err
		}
	}
	if resp.Err != "" {
		if resp.Err == busyMsg {
			return resp, ErrServerBusy
		}
		return resp, fmt.Errorf("%s", resp.Err)
	}
	return resp, nil
}

// caller abstracts "send one request, get one response" so the Source
// method wrappers below are shared between Client (one connection) and
// FailoverSource (a replica set).
type caller interface {
	call(req *request) (*response, error)
}

func callTopology(c caller) (*Topology, error) {
	resp, err := c.call(&request{Op: "topo"})
	if err != nil {
		return nil, err
	}
	return topoFromWire(resp.Topo), nil
}

func callUtilization(c caller, key ChannelKey, span float64) (stats.Stat, error) {
	resp, err := c.call(&request{Op: "util", Key: key, Span: span})
	if err != nil {
		if resp != nil {
			return resp.Stat, err
		}
		return stats.NoData(), err
	}
	return resp.Stat, nil
}

func callSamples(c caller, key ChannelKey) ([]stats.Sample, error) {
	resp, err := c.call(&request{Op: "samples", Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Samples, nil
}

func callHostLoad(c caller, node graph.NodeID, span float64) (stats.Stat, error) {
	resp, err := c.call(&request{Op: "load", Node: string(node), Span: span})
	if err != nil {
		if resp != nil {
			return resp.Stat, err
		}
		return stats.NoData(), err
	}
	return resp.Stat, nil
}

func callDataAge(c caller, key ChannelKey) (float64, error) {
	resp, err := c.call(&request{Op: "age", Key: key})
	if err != nil {
		return 0, err
	}
	return resp.Age, nil
}

func callHealth(c caller) map[graph.NodeID]AgentHealth {
	resp, err := c.call(&request{Op: "health"})
	if err != nil {
		return nil
	}
	out := make(map[graph.NodeID]AgentHealth, len(resp.Health))
	for id, h := range resp.Health {
		out[graph.NodeID(id)] = h
	}
	return out
}

// Topology implements Source.
func (c *Client) Topology() (*Topology, error) { return callTopology(c) }

// Utilization implements Source.
func (c *Client) Utilization(key ChannelKey, span float64) (stats.Stat, error) {
	return callUtilization(c, key, span)
}

// Samples implements Source.
func (c *Client) Samples(key ChannelKey) ([]stats.Sample, error) {
	return callSamples(c, key)
}

// HostLoad implements Source.
func (c *Client) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	return callHostLoad(c, node, span)
}

// DataAge implements Source.
func (c *Client) DataAge(key ChannelKey) (float64, error) {
	return callDataAge(c, key)
}

// Health implements HealthSource: the remote collector's per-agent
// health snapshot (nil when the server cannot provide one).
func (c *Client) Health() map[graph.NodeID]AgentHealth { return callHealth(c) }

// Ping issues a liveness round trip: any answer from the server counts.
func (c *Client) Ping() error {
	_, err := c.call(&request{Op: "ping"})
	return err
}
