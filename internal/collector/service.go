package collector

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// The TCP query service: how an application's Modeler reaches a
// Collector running as a separate process (the deployment in the paper's
// Figure 2). Virtual-time experiments use the Collector in-process; this
// service exists for daemon mode and is covered by real-socket
// integration tests.
//
// Wire format: length-prefixed gob frames (frame.go), each carrying a
// stream-multiplexed envelope (mux.go). A connection multiplexes any
// number of concurrent request/response streams — the client pipelines
// ordinary queries and the server answers each as its handler finishes
// — plus long-lived watch subscription streams (watch.go). Each
// request may carry a deadline-budget hint (BudgetMS); the server
// enforces it — a request whose budget expires in the admission queue
// or before compute starts is answered with a typed deadline refusal
// instead of a dead answer.

// WireNode is the gob wire form of one topology node. The Wire* types
// are exported so downstream feed consumers (read replicas, standby
// collectors, replica-of-replica chains) can speak the feed protocol
// without reaching into collector internals; use FeedPayload.Topology
// (or topoFromWireChecked semantics) to decode untrusted instances.
type WireNode struct {
	ID           string
	Kind         int
	InternalBW   float64
	ComputePower float64
	MemoryBytes  float64
}

// WireLink is the gob wire form of one topology link. Global is the
// paper's global-channel ID for the link (0 = local only).
type WireLink struct {
	A, B     string
	Capacity float64
	Latency  float64
	Global   int
}

// WireTopo is the gob wire form of a discovered topology, carried in
// topology responses, feed payloads, and checkpoint files.
type WireTopo struct {
	Nodes        []WireNode
	Links        []WireLink
	DiscoveredAt float64
}

func topoToWire(t *Topology) *WireTopo {
	w := &WireTopo{DiscoveredAt: t.DiscoveredAt}
	for _, id := range t.Graph.Nodes() {
		n := t.Graph.Node(id)
		w.Nodes = append(w.Nodes, WireNode{
			ID: string(n.ID), Kind: int(n.Kind),
			InternalBW: n.InternalBW, ComputePower: n.ComputePower,
			MemoryBytes: n.MemoryBytes,
		})
	}
	for _, l := range t.Graph.Links() {
		w.Links = append(w.Links, WireLink{
			A: string(l.A), B: string(l.B),
			Capacity: l.Capacity, Latency: l.Latency,
			Global: t.GlobalID[l.ID],
		})
	}
	return w
}

// topoFromWireChecked is topoFromWire for untrusted bytes (a feed
// payload, a server's topo response): the graph package panics on
// incoherent input — dangling link endpoints, duplicate nodes,
// non-positive capacities — because locally that is programmer error,
// but data that crossed the wire must fail decode with an error
// instead.
func topoFromWireChecked(w *WireTopo) (t *Topology, err error) {
	defer func() {
		if p := recover(); p != nil {
			t, err = nil, fmt.Errorf("collector: invalid wire topology: %v", p)
		}
	}()
	return topoFromWire(w), nil
}

func topoFromWire(w *WireTopo) *Topology {
	g := graph.New()
	for _, n := range w.Nodes {
		g.AddNode(graph.Node{
			ID: graph.NodeID(n.ID), Kind: graph.NodeKind(n.Kind),
			InternalBW: n.InternalBW, ComputePower: n.ComputePower,
			MemoryBytes: n.MemoryBytes,
		})
	}
	t := &Topology{Graph: g, GlobalID: make(map[graph.LinkID]int), DiscoveredAt: w.DiscoveredAt}
	for _, l := range w.Links {
		gl := g.AddLink(graph.NodeID(l.A), graph.NodeID(l.B), l.Capacity, l.Latency)
		t.GlobalID[gl.ID] = l.Global
	}
	return t
}

type request struct {
	Op   string // "topo", "util", "samples", "load", "age", "health", "stats", "ping", "watch"
	Key  ChannelKey
	Span float64
	Node string

	// Watch carries the subscription parameters for the "watch" op.
	Watch *WatchRequest

	// Matrix carries the batch parameters for the "matrix" op
	// (matrixwire.go).
	Matrix *MatrixRequest

	// BudgetMS is the client's remaining time budget in milliseconds at
	// send time (0 = none declared; the server applies its
	// DefaultBudget). The server refuses with a typed deadline answer
	// instead of computing results the caller has already abandoned.
	BudgetMS float64

	// TraceID carries the request's trace across the wire ("" when the
	// caller's context carried none), so a client-side span and the
	// server-side span it caused share an ID.
	TraceID string
}

// Response refusal codes. CodeOK also covers application-level errors
// (Err set): the server answered, the answer is authoritative.
const (
	codeOK          = 0
	codeBusy        = 1 // connection cap (ErrServerBusy)
	codeDeadline    = 2 // budget expired before an answer (ErrDeadlineExceeded)
	codeShed        = 3 // admission queue full (ErrLoadShed + retry-after)
	codeWatchLimit  = 4 // subscription cap (ErrTooManySubscriptions)
	codeStale       = 5 // read replica fenced on staleness (ErrStaleReplica)
	codeNotLeader   = 6 // standby in a hot-standby pair (ErrNotLeader + leader hint)
	codeMatrixSize  = 7 // matrix weight the gate can never grant (ErrMatrixTooLarge)
	codeMatrixUnsup = 8 // server cannot compute matrices (ErrMatrixUnsupported)
)

type response struct {
	Err     string
	Stat    stats.Stat
	Samples []stats.Sample
	Topo    *WireTopo
	Age     float64
	Health  map[string]AgentHealth

	// Code distinguishes typed refusals from application errors;
	// RetryAfterMS accompanies codeShed, LeaderHint codeNotLeader.
	Code         int
	RetryAfterMS float64
	LeaderHint   string

	// Term and Leader carry the answering node's HA fencing state when
	// its Source exposes one (HAStatusSource): Term is the monotonic
	// lease term, Leader whether the node held it at answer time. Both
	// zero on sources without HA.
	Term   uint64
	Leader bool

	// Telemetry answers the "stats" op: the server's metrics registry
	// merged with its Source's, when the Source exposes one.
	Telemetry *telemetry.Snapshot

	// Matrix answers the "matrix" op (matrixwire.go).
	Matrix *MatrixAnswer
}

// init warms gob's type engines with representative wire values so the
// first real request on a fresh process does not pay engine compilation
// on top of its round trip. Nested fields are populated: gob builds
// engines lazily, per concrete type it actually sees.
func init() {
	warmGob(
		&request{Op: "ping", Key: ChannelKey{Global: 1}, Span: 1, Node: "n", BudgetMS: 1, TraceID: "t",
			Watch:  &WatchRequest{Kind: WatchUtil, Key: ChannelKey{Global: 1}, Span: 1, Threshold: 1},
			Matrix: &MatrixRequest{Srcs: []graph.NodeID{"a"}, Dsts: []graph.NodeID{"b"}, TFKind: 2, Span: 1, Horizon: 1}},
		&response{
			Err:     "e",
			Stat:    stats.Stat{Min: 1, Q1: 1, Median: 1, Q3: 1, Max: 1, Accuracy: 1, Samples: 1, Age: 1},
			Samples: []stats.Sample{{Time: 1, Value: 1}},
			Topo: &WireTopo{
				Nodes:        []WireNode{{ID: "n", Kind: 1, InternalBW: 1, ComputePower: 1, MemoryBytes: 1}},
				Links:        []WireLink{{A: "a", B: "b", Capacity: 1, Latency: 1, Global: 1}},
				DiscoveredAt: 1,
			},
			Age:          1,
			Health:       map[string]AgentHealth{"n": {}},
			Code:         1,
			RetryAfterMS: 1,
			LeaderHint:   "l",
			Term:         1,
			Leader:       true,
			Telemetry:    &telemetry.Snapshot{Counters: map[string]uint64{"c": 1}},
			Matrix: &MatrixAnswer{
				Bandwidth: [][]float64{{1}},
				Latency:   [][]float64{{1}},
				Valid:     [][]bool{{true}},
				Epoch:     1,
				Term:      1,
			},
		},
	)
}

// DefaultIdleTimeout is how long a connection may sit between requests
// (or mid-frame) before the server drops it: a client that connects and
// sends nothing — or a truncated frame — must not pin a goroutine and
// an FD forever.
const DefaultIdleTimeout = 2 * time.Minute

// ErrServerBusy is the typed refusal a server at its connection cap
// answers with instead of silently queueing the client. Clients surface
// it via errors.Is; FailoverSource treats it as "try another replica".
var ErrServerBusy = errors.New("collector: server busy")

// busyMsg is ErrServerBusy's wire form (errors don't cross gob).
var busyMsg = ErrServerBusy.Error()

// ServerConfig tunes the server's lifecycle protections. The zero value
// of each field selects its default.
type ServerConfig struct {
	// IdleTimeout is the per-connection read deadline between (and
	// within) request frames (default DefaultIdleTimeout); negative
	// disables it. It also bounds response writes, so a client that
	// stops reading cannot pin the serving goroutine.
	IdleTimeout time.Duration
	// MaxConns caps concurrently served connections; connections beyond
	// the cap are answered with ErrServerBusy and closed. Zero means
	// unlimited.
	MaxConns int

	// MaxInflight caps concurrent work units across all connections (a
	// weighted semaphore: topology queries cost 4 units, sample dumps 2,
	// everything else 1, pings are free). Zero disables admission
	// control.
	MaxInflight int
	// QueueDepth bounds how many requests may wait for work units;
	// arrivals beyond it are shed with a typed retry-after refusal.
	// Only meaningful with MaxInflight > 0; zero means no queue (shed
	// immediately when the semaphore is full).
	QueueDepth int
	// DefaultBudget is the per-request time budget applied when the
	// client declares none. Zero means unbudgeted requests wait at most
	// DefaultQueueWait in admission and are never refused for time.
	DefaultBudget time.Duration
	// MaxFrame bounds one wire frame in bytes (default
	// DefaultMaxFrame); oversized or corrupt length prefixes drop the
	// connection instead of driving an allocation.
	MaxFrame int

	// WatchQueueDepth bounds each watch subscriber's pending-delta
	// queue (default DefaultWatchQueueDepth). On overflow the oldest
	// delta is dropped and the next delivered one carries an
	// Overflowed mark.
	WatchQueueDepth int
	// WatchWriteDeadline is the per-update write budget for watch
	// pushes (default DefaultWatchWriteDeadline): a subscriber whose
	// connection stays blocked past it is evicted instead of wedging
	// its pusher.
	WatchWriteDeadline time.Duration
	// WatchMaxSubs caps live subscriptions across all connections
	// (default DefaultWatchMaxSubs); registrations beyond it get a
	// typed ErrTooManySubscriptions refusal. Negative means unlimited.
	WatchMaxSubs int
	// WatchPollInterval is the evaluation period used when the Source
	// offers no version notifications (default
	// DefaultWatchPollInterval).
	WatchPollInterval time.Duration

	// Telemetry is the registry the server records into (request spans,
	// per-op counters, admission metrics). Nil means the server creates
	// its own; it is always reachable via Server.Telemetry.
	Telemetry *telemetry.Registry

	// Matrix, when non-nil, serves the "matrix" op (one rectangular
	// batch of flow answers per round trip, matrixwire.go). Wire it to
	// core.MatrixHandler over a Modeler built on the same Source. When
	// nil, a Source that itself implements MatrixSource is forwarded
	// to; otherwise the op answers ErrMatrixUnsupported and clients
	// fall back to per-pair queries.
	Matrix MatrixHandler
	// MaxMatrixCells caps a matrix request's area, len(Srcs)*len(Dsts)
	// (default DefaultMaxMatrixCells; negative = unlimited). Requests
	// beyond it get a typed, non-retryable ErrMatrixTooLarge.
	MaxMatrixCells int

	// Gate, when non-nil, is consulted before every query and watch
	// registration with the request's op name ("watch" for
	// subscriptions); a non-nil return refuses the request with that
	// error's typed wire form. The HA layer installs a gate that answers
	// ErrNotLeader (plus a leader hint) on standbys. "ping" and "stats"
	// are exempt — liveness probes and metrics scrapes must work on a
	// standby.
	Gate func(op string) error
}

// Watch subscription defaults; see the matching ServerConfig fields.
const (
	DefaultWatchQueueDepth    = 16
	DefaultWatchWriteDeadline = 2 * time.Second
	DefaultWatchMaxSubs       = 1024
	DefaultWatchPollInterval  = 100 * time.Millisecond
)

func (sc *ServerConfig) fill() {
	if sc.IdleTimeout == 0 {
		sc.IdleTimeout = DefaultIdleTimeout
	}
	if sc.MaxFrame <= 0 {
		sc.MaxFrame = DefaultMaxFrame
	}
	if sc.WatchQueueDepth <= 0 {
		sc.WatchQueueDepth = DefaultWatchQueueDepth
	}
	if sc.WatchWriteDeadline <= 0 {
		sc.WatchWriteDeadline = DefaultWatchWriteDeadline
	}
	if sc.WatchMaxSubs == 0 {
		sc.WatchMaxSubs = DefaultWatchMaxSubs
	}
	if sc.WatchPollInterval <= 0 {
		sc.WatchPollInterval = DefaultWatchPollInterval
	}
	if sc.MaxMatrixCells == 0 {
		sc.MaxMatrixCells = DefaultMaxMatrixCells
	}
}

// Server exposes a Source over TCP.
type Server struct {
	src  Source
	cfg  ServerConfig
	ln   net.Listener
	gate *workGate
	tel  *telemetry.Registry
	wg   sync.WaitGroup

	mu       sync.Mutex
	conns    map[net.Conn]*connState
	draining bool

	// Watch subscription registry (watch.go). watchKick wakes the
	// evaluator when a subscription registers; watchStop ends the
	// evaluator and every pusher. synthEpoch is the fallback epoch
	// counter for unversioned sources, owned by watchLoop.
	watchMu       sync.Mutex
	watchSubs     map[*subscription]struct{}
	watchKick     chan struct{}
	watchStop     chan struct{}
	watchStopOnce sync.Once
	synthEpoch    uint64
}

// connState tracks a connection's outstanding work: in-flight request
// handlers and live watch subscriptions. Draining closes idle
// connections (neither) immediately and lets the rest finish.
type connState struct {
	inflight int
	subs     int
}

// servedConn is the server's per-connection state: the write lock that
// serializes response and watch-update frames from concurrent handler
// and pusher goroutines, and the connection's live subscriptions.
type servedConn struct {
	srv  *Server
	conn net.Conn
	st   *connState

	wmu sync.Mutex

	mu     sync.Mutex
	subMap map[uint64]*subscription // stream -> subscription
}

// writeFrame writes one frame under the connection's write lock with a
// per-write deadline.
func (sc *servedConn) writeFrame(f *muxFrame, deadline time.Duration) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	if deadline > 0 {
		sc.conn.SetWriteDeadline(time.Now().Add(deadline))
	}
	return writeFrame(sc.conn, f, sc.srv.cfg.MaxFrame)
}

func (sc *servedConn) addSub(sub *subscription) {
	sc.mu.Lock()
	if sc.subMap == nil {
		sc.subMap = make(map[uint64]*subscription)
	}
	sc.subMap[sub.stream] = sub
	sc.mu.Unlock()
	sc.srv.mu.Lock()
	sc.st.subs++
	sc.srv.mu.Unlock()
}

func (sc *servedConn) removeSub(sub *subscription) {
	sc.mu.Lock()
	if sc.subMap[sub.stream] == sub {
		delete(sc.subMap, sub.stream)
	}
	sc.mu.Unlock()
	sc.srv.mu.Lock()
	sc.st.subs--
	sc.srv.mu.Unlock()
}

// subCount reports the connection's live subscriptions (read-deadline
// suppression: watch connections are legitimately silent for long).
func (sc *servedConn) subCount() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.subMap)
}

// Serve starts a query server on addr (e.g. "127.0.0.1:0") with default
// lifecycle protections.
func Serve(src Source, addr string) (*Server, error) {
	return ServeConfig(src, addr, ServerConfig{})
}

// ServeConfig starts a query server with explicit lifecycle protections.
func ServeConfig(src Source, addr string, cfg ServerConfig) (*Server, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	s := &Server{
		src: src, cfg: cfg, ln: ln,
		gate:      newWorkGate(cfg.MaxInflight, cfg.QueueDepth),
		tel:       tel,
		conns:     make(map[net.Conn]*connState),
		watchSubs: make(map[*subscription]struct{}),
		watchKick: make(chan struct{}, 1),
		watchStop: make(chan struct{}),
	}
	s.gate.instrument(tel)
	s.wg.Add(2)
	go s.acceptLoop()
	go s.watchLoop()
	return s, nil
}

// stopWatch ends the watch evaluator and unblocks idle pushers.
func (s *Server) stopWatch() {
	s.watchStopOnce.Do(func() { close(s.watchStop) })
}

// kickWatch wakes the evaluator out-of-cycle (a new subscription wants
// its first update without waiting out a poll interval).
func (s *Server) kickWatch() {
	select {
	case s.watchKick <- struct{}{}:
	default:
	}
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// GateStats snapshots the admission gate's counters (zero value when
// admission control is disabled).
func (s *Server) GateStats() GateStats {
	if s.gate == nil {
		return GateStats{}
	}
	return s.gate.stats()
}

// Telemetry returns the server's metrics registry (never nil).
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// TelemetrySource is implemented by Sources that keep their own metrics
// registry (the in-process Collector, FailoverSource, Merged). The
// server's "stats" op merges it into the answer.
type TelemetrySource interface {
	Telemetry() *telemetry.Registry
}

// Close stops the server immediately: it stops accepting, force-closes
// active connections (in-flight requests see a write error), and waits
// for all serving goroutines. Use Shutdown for a graceful drain.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	s.draining = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.stopWatch()
	s.wg.Wait()
	return err
}

// Shutdown drains the server gracefully: it stops accepting, closes
// idle connections, lets in-flight requests finish for up to timeout,
// then force-closes whatever remains and waits for all serving
// goroutines. A non-positive timeout degenerates to Close.
func (s *Server) Shutdown(timeout time.Duration) error {
	err := s.ln.Close()
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	s.draining = true
	for c, st := range s.conns {
		if st.inflight == 0 && st.subs == 0 {
			c.Close() // wakes the blocked read; the loop exits
		}
	}
	s.mu.Unlock()
	// Watch subscriptions drain with a terminal Final frame before
	// their connections close: subscribers learn the stream ended
	// cleanly instead of inferring it from a reset.
	s.drainWatches(deadline)
	s.stopWatch()

	for {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			s.mu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.mu.Unlock()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.refuse(conn)
			}()
			continue
		}
		s.conns[conn] = &connState{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// refuse answers one over-cap connection with a typed busy error and
// closes it, so the client fails fast instead of queueing invisibly.
func (s *Server) refuse(conn net.Conn) {
	defer conn.Close()
	if s.cfg.IdleTimeout > 0 {
		conn.SetDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
	// Wait for the first request frame so the refusal pairs with a call
	// the client is actually waiting on, then answer it on its stream.
	var f muxFrame
	if err := readFrame(conn, &f, s.cfg.MaxFrame); err != nil {
		return
	}
	writeFrame(conn, &muxFrame{
		Stream: f.Stream, Kind: mfResponse,
		Resp: &response{Err: busyMsg, Code: codeBusy},
	}, s.cfg.MaxFrame)
}

func (s *Server) serveConn(conn net.Conn) {
	s.mu.Lock()
	st := s.conns[conn]
	s.mu.Unlock()
	if st == nil {
		conn.Close()
		return
	}
	sc := &servedConn{srv: s, conn: conn, st: st}
	var inflight sync.WaitGroup
	defer func() {
		conn.Close()
		// Tear down this connection's subscriptions (their pushers exit
		// on the closed cancel channel or the dead conn), then wait for
		// in-flight handlers — they still write, harmlessly, to the
		// closed conn.
		sc.mu.Lock()
		subs := make([]*subscription, 0, len(sc.subMap))
		for _, sub := range sc.subMap {
			subs = append(subs, sub)
		}
		sc.mu.Unlock()
		for _, sub := range subs {
			s.cancelSub(sub)
		}
		inflight.Wait()
	}()
	for {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return
		}
		// Idle read deadline: a silent client, or one that sends half a
		// frame and stalls, loses the connection instead of holding it.
		// A connection with live subscriptions is exempt — a watcher is
		// legitimately silent for as long as it keeps reading pushes.
		if s.cfg.IdleTimeout > 0 {
			dl := time.Now().Add(s.cfg.IdleTimeout)
			if sc.subCount() > 0 {
				dl = time.Time{}
			}
			if err := conn.SetReadDeadline(dl); err != nil {
				return
			}
		}
		var f muxFrame
		if err := readFrame(conn, &f, s.cfg.MaxFrame); err != nil {
			// Oversized or malformed frames (ErrFrameTooLarge, bad gob)
			// drop only this connection: the stream cannot be resynced,
			// and answering garbage would reward a hostile peer.
			return
		}
		switch {
		case f.Kind == mfRequest && f.Req != nil && f.Req.Op == "watch":
			// Subscriptions register synchronously in the read loop so
			// the ack precedes any teardown race with a fast Cancel.
			resp, sub := s.registerWatch(sc, f.Stream, f.Req)
			if err := sc.writeFrame(&muxFrame{Stream: f.Stream, Kind: mfResponse, Resp: resp},
				s.cfg.IdleTimeout); err != nil {
				return
			}
			if sub != nil {
				s.kickWatch()
			}
		case f.Kind == mfRequest && f.Req != nil:
			// Ordinary requests dispatch concurrently: the mux framing
			// exists so one slow query does not head-of-line block the
			// pipeline behind it.
			s.mu.Lock()
			st.inflight++
			s.mu.Unlock()
			inflight.Add(1)
			s.wg.Add(1)
			stream, req := f.Stream, f.Req
			go func() {
				defer s.wg.Done()
				defer inflight.Done()
				resp := s.dispatch(req)
				sc.writeFrame(&muxFrame{Stream: stream, Kind: mfResponse, Resp: resp},
					s.cfg.IdleTimeout)
				s.mu.Lock()
				st.inflight--
				idle := s.draining && st.inflight == 0 && st.subs == 0
				s.mu.Unlock()
				if idle {
					// Drain completed this connection's last work; close
					// it so Shutdown does not wait out the full timeout.
					conn.Close()
				}
			}()
		case f.Kind == mfCancel:
			sc.mu.Lock()
			sub := sc.subMap[f.Stream]
			sc.mu.Unlock()
			if sub != nil {
				s.cancelSub(sub)
			}
		default:
			// Unknown frame kind: protocol violation, drop the conn.
			return
		}
	}
}

// dispatch runs one request through budget accounting and admission
// control before handing it to the Source. The order matters: the
// budget clock starts at arrival, the admission wait is charged against
// it, and a request that comes out of the queue with nothing left is
// refused, not computed.
func (s *Server) dispatch(req *request) *response {
	start := time.Now()
	s.tel.Counter("server.op." + req.Op).Inc()
	sp := s.tel.StartSpan(req.TraceID, "rpc."+req.Op)
	defer sp.Finish()
	if s.cfg.Gate != nil && req.Op != "ping" && req.Op != "stats" {
		if err := s.cfg.Gate(req.Op); err != nil {
			sp.SetAttr("verdict", "gated")
			resp := &response{}
			appError(resp, err)
			return resp
		}
	}
	var deadline time.Time
	if req.BudgetMS > 0 {
		deadline = start.Add(time.Duration(req.BudgetMS * float64(time.Millisecond)))
	} else if s.cfg.DefaultBudget > 0 {
		deadline = start.Add(s.cfg.DefaultBudget)
	}
	w := opWeight(req.Op)
	if req.Op == "matrix" {
		// Size policy runs before the gate: a matrix the gate could
		// never grant must answer a typed non-retryable refusal, not
		// queue forever or be silently clamped to a cheaper weight.
		if err := s.matrixAdmissible(req.Matrix); err != nil {
			sp.SetAttr("verdict", "refused")
			resp := &response{}
			appError(resp, err)
			s.stampHA(resp)
			return resp
		}
		w = matrixWeight(req.Matrix)
	}
	if s.gate != nil && w > 0 {
		if err := s.gate.acquire(w, deadline); err != nil {
			sp.SetAttr("verdict", verdictFor(err))
			return refusalResponse(err)
		}
		defer s.gate.release(w)
	}
	sp.SetAttr("queue_wait_ms", fmt.Sprintf("%.3f", float64(time.Since(start))/float64(time.Millisecond)))
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		sp.SetAttr("verdict", "deadline")
		return &response{Err: ErrDeadlineExceeded.Error(), Code: codeDeadline}
	}
	sp.SetAttr("verdict", "admitted")
	handleStart := time.Now()
	resp := s.handle(req, deadline)
	sp.SetAttr("handler_ms", fmt.Sprintf("%.3f", float64(time.Since(handleStart))/float64(time.Millisecond)))
	return resp
}

// verdictFor names a gate refusal for span records.
func verdictFor(err error) string {
	switch {
	case errors.Is(err, ErrLoadShed):
		return "shed"
	case errors.Is(err, ErrDeadlineExceeded):
		return "deadline"
	default:
		return "busy"
	}
}

// refusalResponse converts a gate error into its typed wire form.
func refusalResponse(err error) *response {
	if ra, ok := RetryAfterHint(err); ok {
		return &response{Err: err.Error(), Code: codeShed, RetryAfterMS: ra.Seconds() * 1000}
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		return &response{Err: err.Error(), Code: codeDeadline}
	}
	return &response{Err: busyMsg, Code: codeBusy}
}

// appError records an application-level error on a response. Most stay
// plain codeOK errors (the answer is authoritative), but a stale-fenced
// read replica's refusal — and a standby's not-leader refusal — get
// their typed wire codes so clients reproduce the sentinel and the
// failover layer can route around it.
func appError(resp *response, err error) {
	resp.Err = err.Error()
	switch {
	case errors.Is(err, ErrStaleReplica):
		resp.Code = codeStale
	case errors.Is(err, ErrNotLeader):
		resp.Code = codeNotLeader
		if hint, ok := LeaderHint(err); ok {
			resp.LeaderHint = hint
		}
	case errors.Is(err, ErrMatrixTooLarge):
		resp.Code = codeMatrixSize
	case errors.Is(err, ErrMatrixUnsupported):
		resp.Code = codeMatrixUnsup
	}
}

// HAStatusSource is implemented by Sources that participate in a
// hot-standby pair (a Collector under an ha.Node). The server stamps
// the reported term and role on every response so clients can fence
// answers from a deposed leader; ok is false on sources without HA
// (then responses keep the zero Term/Leader).
type HAStatusSource interface {
	HAStatus() (term uint64, leader bool, ok bool)
}

// stampHA records the source's HA fencing state on a response.
func (s *Server) stampHA(resp *response) {
	if hs, ok := s.src.(HAStatusSource); ok {
		if term, leader, on := hs.HAStatus(); on {
			resp.Term, resp.Leader = term, leader
		}
	}
}

// handle answers one request. A panicking Source must cost the client
// one errored response, never the daemon process: every shared-daemon
// deployment (the paper's Figure 2) has this property or doesn't scale
// past its first misbehaving query.
func (s *Server) handle(req *request, deadline time.Time) (resp *response) {
	resp = &response{}
	defer func() {
		if r := recover(); r != nil {
			log.Printf("collector: recovered panic serving %q: %v", req.Op, r)
			resp = &response{Err: fmt.Sprintf("collector: internal error serving %q: %v", req.Op, r)}
		}
		s.stampHA(resp)
	}()
	switch req.Op {
	case "topo":
		t, err := s.src.Topology()
		if err != nil {
			appError(resp, err)
		} else {
			resp.Topo = topoToWire(t)
		}
	case "util":
		st, err := s.src.Utilization(req.Key, req.Span)
		if err != nil {
			appError(resp, err)
		}
		resp.Stat = st
	case "samples":
		sm, err := s.src.Samples(req.Key)
		if err != nil {
			appError(resp, err)
		}
		resp.Samples = sm
	case "load":
		st, err := s.src.HostLoad(graph.NodeID(req.Node), req.Span)
		if err != nil {
			appError(resp, err)
		}
		resp.Stat = st
	case "age":
		age, err := s.src.DataAge(req.Key)
		if err != nil {
			appError(resp, err)
		}
		resp.Age = age
	case "health":
		if hs, ok := s.src.(HealthSource); ok {
			h := hs.Health()
			resp.Health = make(map[string]AgentHealth, len(h))
			for id, ah := range h {
				resp.Health[string(id)] = ah
			}
		} else {
			resp.Err = "collector: source does not track health"
		}
	case "stats":
		// Mirror the gate's instantaneous state into gauges so a snapshot
		// shows live pressure, not just cumulative counters.
		if s.gate != nil {
			gs := s.gate.stats()
			s.tel.Gauge("server.admission.in_use").Set(float64(gs.InUse))
			s.tel.Gauge("server.admission.queue_depth").Set(float64(gs.Queued))
		}
		snaps := []telemetry.Snapshot{s.tel.Snapshot()}
		if ts, ok := s.src.(TelemetrySource); ok {
			if reg := ts.Telemetry(); reg != nil {
				snaps = append(snaps, reg.Snapshot())
			}
		}
		snap := telemetry.MergeSnapshots(snaps...)
		resp.Telemetry = &snap
	case "matrix":
		// The handler inherits what remains of the request's budget so
		// mid-matrix measurement fetches observe the same deadline the
		// admission layer charged the wait against.
		ctx := context.Background()
		if !deadline.IsZero() {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, deadline)
			defer cancel()
		}
		if req.TraceID != "" {
			ctx = telemetry.WithTrace(ctx, req.TraceID)
		}
		s.handleMatrix(ctx, resp, req.Matrix)
	case "ping":
		// Liveness probe: reaching the switch at all is the answer.
	default:
		resp.Err = fmt.Sprintf("collector: unknown op %q", req.Op)
	}
	return resp
}

// DefaultCallTimeout bounds one query round trip (dial + write + read):
// a hung or half-dead server must never block the Modeler forever.
const DefaultCallTimeout = 5 * time.Second

// DefaultRetryBackoff is the pause before the reconnect attempt after a
// failed call, giving a restarting server a moment to rebind.
const DefaultRetryBackoff = 100 * time.Millisecond

// ClientConfig tunes a client's failure behaviour. The zero value of
// each field selects its default.
type ClientConfig struct {
	// CallTimeout is the per-call I/O deadline (default
	// DefaultCallTimeout); negative disables deadlines. A sooner
	// context deadline tightens it per call.
	CallTimeout time.Duration
	// RetryBackoff is the wait between the failed attempt and the one
	// reconnect retry (default DefaultRetryBackoff); negative disables
	// the pause.
	RetryBackoff time.Duration
	// SingleAttempt disables the client's internal reconnect-and-retry.
	// FailoverSource sets it: when other replicas are available, trying
	// one of them beats retrying the replica that just failed.
	SingleAttempt bool
	// MaxFrame bounds one wire frame in bytes (default
	// DefaultMaxFrame): a corrupt length prefix from a sick server is
	// rejected with ErrFrameTooLarge instead of allocating.
	MaxFrame int

	// WatchQueueDepth bounds the client-side pending-update queue of
	// each watch subscription (default DefaultWatchQueueDepth): a
	// consumer that reads slower than the server pushes sees
	// drop-oldest plus Overflowed marks instead of unbounded buffering
	// or TCP backpressure that would stall the whole multiplexed
	// connection.
	WatchQueueDepth int

	// Telemetry, when non-nil, records per-call metrics (client.calls,
	// client.call.errors, client.call_ms). Nil disables client-side
	// metrics at zero cost.
	Telemetry *telemetry.Registry
}

func (cc *ClientConfig) fill() {
	if cc.CallTimeout == 0 {
		cc.CallTimeout = DefaultCallTimeout
	}
	if cc.RetryBackoff == 0 {
		cc.RetryBackoff = DefaultRetryBackoff
	}
	if cc.MaxFrame <= 0 {
		cc.MaxFrame = DefaultMaxFrame
	}
	if cc.WatchQueueDepth <= 0 {
		cc.WatchQueueDepth = DefaultWatchQueueDepth
	}
}

// writeBudget bounds one frame write on the wire.
func (cc *ClientConfig) writeBudget() time.Duration {
	if cc.CallTimeout < 0 {
		return 0
	}
	return cc.CallTimeout
}

// errClientClosed reports calls on a Close()d client.
var errClientClosed = errors.New("collector: client is closed")

// errCallTimeout is the transport-level timeout for a call whose
// response never arrived within CallTimeout: the hung-server case,
// which (unlike a context deadline) drops the connection and retries.
var errCallTimeout = errors.New("collector: call timed out waiting for response")

// Client is a Source backed by a remote collector service. All calls
// share one multiplexed connection: any number may be in flight
// concurrently (pipelining), and watch subscriptions ride alongside
// them on their own streams.
type Client struct {
	addr string
	cfg  ClientConfig
	tel  *telemetry.Registry // nil = client-side metrics disabled

	// connMu guards the connection pointer and the closed flag, so
	// Close can abort in-flight calls instead of queueing behind them.
	connMu sync.Mutex
	mc     *muxConn
	closed bool
}

// muxConn is one multiplexed connection: a background read loop
// demultiplexes incoming frames to per-stream waiters (ordinary calls)
// and bounded per-subscription queues (watches). A transport error
// fails every outstanding stream at once — the conn is then dead and
// the client dials a fresh one.
type muxConn struct {
	conn net.Conn
	max  int
	tel  *telemetry.Registry

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	calls   map[uint64]chan *response
	watches map[uint64]*clientWatch
	err     error
	done    chan struct{} // closed by fail()
}

// clientWatch is the client half of one subscription stream.
type clientWatch struct {
	q      *watchQueue
	handle *WatchHandle // set (under muxConn.mu) once the ack arrives
}

// Dial connects to a collector service with default timeouts.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a collector service with explicit failure
// behaviour.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	c := &Client{addr: addr, cfg: cfg, tel: cfg.Telemetry}
	if _, err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect dials a fresh multiplexed connection and installs it, unless
// a concurrent caller already installed a live one (then that one is
// kept and the extra dial discarded).
func (c *Client) connect() (*muxConn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.closed {
		conn.Close()
		return nil, errClientClosed
	}
	if c.mc != nil && c.mc.alive() {
		conn.Close()
		return c.mc, nil
	}
	mc := &muxConn{
		conn: conn, max: c.cfg.MaxFrame, tel: c.tel,
		calls:   make(map[uint64]chan *response),
		watches: make(map[uint64]*clientWatch),
		done:    make(chan struct{}),
	}
	c.mc = mc
	go mc.readLoop()
	return mc, nil
}

func (c *Client) dialTimeout() time.Duration {
	if c.cfg.CallTimeout < 0 {
		return 0 // no limit
	}
	return c.cfg.CallTimeout
}

// getConn returns the live connection, dialing one if needed.
func (c *Client) getConn() (*muxConn, error) {
	c.connMu.Lock()
	mc, closed := c.mc, c.closed
	c.connMu.Unlock()
	if closed {
		return nil, errClientClosed
	}
	if mc != nil && mc.alive() {
		return mc, nil
	}
	return c.connect()
}

// Close tears down the connection. In-flight calls are aborted (they
// fail immediately) and watch subscriptions end with Err() set.
func (c *Client) Close() error {
	c.connMu.Lock()
	c.closed = true
	mc := c.mc
	c.mc = nil
	c.connMu.Unlock()
	if mc != nil {
		mc.close(errClientClosed)
	}
	return nil
}

// dropConn discards a specific connection (its stream may be mid-frame
// or its server hung): outstanding streams on it fail, and the next
// call reconnects on a clean one. A different, newer connection
// installed meanwhile is left alone.
func (c *Client) dropConn(mc *muxConn) {
	if mc == nil {
		return
	}
	c.connMu.Lock()
	if c.mc == mc {
		c.mc = nil
	}
	c.connMu.Unlock()
	mc.close(fmt.Errorf("collector: connection dropped"))
}

func (mc *muxConn) alive() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.err == nil
}

// close fails the connection with err and closes the socket.
func (mc *muxConn) close(err error) {
	mc.fail(err)
	mc.conn.Close()
}

// fail marks the connection dead exactly once: every waiting call sees
// err via the done channel, and every live watch ends with Err() set
// after its already-received updates drain.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.err != nil {
		mc.mu.Unlock()
		return
	}
	mc.err = err
	watches := mc.watches
	mc.watches = make(map[uint64]*clientWatch)
	close(mc.done)
	mc.mu.Unlock()
	for _, w := range watches {
		if w.handle != nil {
			w.handle.setErr(err)
		}
	}
}

// readLoop demultiplexes incoming frames until the connection dies.
// It never sets a read deadline: liveness is the per-call waiter's
// job, and a watch-only connection is legitimately quiet.
func (mc *muxConn) readLoop() {
	for {
		var f muxFrame
		if err := readFrame(mc.conn, &f, mc.max); err != nil {
			mc.fail(err)
			mc.conn.Close()
			return
		}
		switch f.Kind {
		case mfResponse:
			mc.mu.Lock()
			ch := mc.calls[f.Stream]
			delete(mc.calls, f.Stream)
			mc.mu.Unlock()
			if ch != nil && f.Resp != nil {
				ch <- f.Resp // cap 1, waiter may already be gone
			}
		case mfUpdate:
			if f.Update == nil {
				continue
			}
			mc.mu.Lock()
			w := mc.watches[f.Stream]
			if w != nil && f.Update.Final {
				// A clean terminal frame: deregister now so a transport
				// error right behind it cannot mark this stream failed.
				delete(mc.watches, f.Stream)
			}
			mc.mu.Unlock()
			if w != nil {
				if w.q.push(*f.Update) {
					mc.tel.Counter("client.watch.drops.overflow").Inc()
				}
			}
		}
		// Unknown kinds and responses for departed streams (a call that
		// timed out or was cancelled) are discarded silently.
	}
}

// writeMux writes one frame under the write lock with a bounded write
// deadline.
func (mc *muxConn) writeMux(f *muxFrame, budget time.Duration) error {
	mc.wmu.Lock()
	defer mc.wmu.Unlock()
	if budget > 0 {
		mc.conn.SetWriteDeadline(time.Now().Add(budget))
	}
	return writeFrame(mc.conn, f, mc.max)
}

// roundTrip sends one request on a fresh stream and waits for its
// response: until the context ends (typed ctx error, connection kept —
// the late response is discarded by the read loop), CallTimeout
// expires (hung-server suspicion — the caller drops the connection),
// or the connection dies.
func (mc *muxConn) roundTrip(ctx context.Context, req *request, cfg *ClientConfig) (*response, error) {
	mc.mu.Lock()
	if mc.err != nil {
		err := mc.err
		mc.mu.Unlock()
		return nil, err
	}
	mc.nextID++
	id := mc.nextID
	ch := make(chan *response, 1)
	mc.calls[id] = ch
	mc.mu.Unlock()
	defer func() {
		mc.mu.Lock()
		delete(mc.calls, id)
		mc.mu.Unlock()
	}()

	req.BudgetMS = 0
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			req.BudgetMS = rem.Seconds() * 1000
		}
	}
	if err := mc.writeMux(&muxFrame{Stream: id, Kind: mfRequest, Req: req}, cfg.writeBudget()); err != nil {
		return nil, err
	}
	var timeout <-chan time.Time
	if cfg.CallTimeout > 0 {
		t := time.NewTimer(cfg.CallTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		return nil, ctxError(ctx)
	case <-timeout:
		return nil, errCallTimeout
	case <-mc.done:
		mc.mu.Lock()
		err := mc.err
		mc.mu.Unlock()
		return nil, err
	}
}

// call sends one request and reads its response, honouring ctx: the
// remaining context budget rides in the request frame as a hint for
// server-side enforcement, and cancellation or an expired deadline
// abandons the wait immediately (typed error) without killing the
// shared connection. Transport failures — dead conn, hung server —
// drop the connection so concurrent streams fail fast and the next
// call starts clean.
func (c *Client) call(ctx context.Context, req *request) (_ *response, retErr error) {
	if err := ctxError(ctx); err != nil {
		return nil, err
	}
	req.TraceID = telemetry.TraceFrom(ctx)
	callStart := time.Now()
	defer func() {
		c.tel.Counter("client.calls").Inc()
		if retErr != nil {
			c.tel.Counter("client.call.errors").Inc()
		}
		c.tel.Quantile("client.call_ms", 0).
			Observe(float64(time.Since(callStart)) / float64(time.Millisecond))
	}()
	attempt := func() (*response, error) {
		mc, err := c.getConn()
		if err != nil {
			return nil, err
		}
		resp, err := mc.roundTrip(ctx, req, &c.cfg)
		if err != nil && ctxCallError(ctx) == nil {
			// Transport failure, not a caller-side deadline: this conn
			// is suspect (dead, or its server hung); fail it over.
			c.dropConn(mc)
		}
		return resp, err
	}
	resp, err := attempt()
	if err != nil {
		if cerr := ctxCallError(ctx); cerr != nil {
			return nil, fmt.Errorf("%w (%v)", cerr, err)
		}
		// One reconnect after a short backoff: the server may be
		// restarting; retrying instantly tends to race its rebind. A
		// frame-size rejection is not retryable — the peer is broken.
		if c.cfg.SingleAttempt || errors.Is(err, ErrFrameTooLarge) || errors.Is(err, errClientClosed) {
			return nil, err
		}
		if c.cfg.RetryBackoff > 0 {
			t := time.NewTimer(c.cfg.RetryBackoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctxError(ctx)
			}
		}
		resp, err = attempt()
		if err != nil {
			if cerr := ctxCallError(ctx); cerr != nil {
				return nil, fmt.Errorf("%w (%v)", cerr, err)
			}
			return nil, err
		}
	}
	return decodeResponse(resp)
}

// Watch implements WatchSource over the wire: the subscription rides
// its own stream on the shared multiplexed connection, so ordinary
// pipelined calls continue unaffected beside it. ctx bounds the
// subscribe handshake and, if it ends later, cancels the subscription.
func (c *Client) Watch(ctx context.Context, wr WatchRequest) (*WatchHandle, error) {
	if err := ctxError(ctx); err != nil {
		return nil, err
	}
	if !validWatchKind(wr.Kind) {
		return nil, fmt.Errorf("collector: unknown watch kind %q", wr.Kind)
	}
	h, err := c.subscribeOnce(ctx, wr)
	if err == nil {
		return h, nil
	}
	if cerr := ctxCallError(ctx); cerr != nil {
		return nil, fmt.Errorf("%w (%v)", cerr, err)
	}
	if c.cfg.SingleAttempt || IsLifecycleError(err) || errors.Is(err, ErrTooManySubscriptions) ||
		errors.Is(err, errClientClosed) {
		return nil, err
	}
	// One reconnect-and-retry for transport failures, like call().
	if c.cfg.RetryBackoff > 0 {
		t := time.NewTimer(c.cfg.RetryBackoff)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctxError(ctx)
		}
	}
	return c.subscribeOnce(ctx, wr)
}

func (c *Client) subscribeOnce(ctx context.Context, wr WatchRequest) (*WatchHandle, error) {
	mc, err := c.getConn()
	if err != nil {
		return nil, err
	}
	h, err := mc.subscribe(ctx, wr, &c.cfg)
	if err != nil && ctxCallError(ctx) == nil && !errors.Is(err, ErrServerBusy) &&
		!errors.Is(err, ErrTooManySubscriptions) {
		c.dropConn(mc)
	}
	if err == nil {
		c.tel.Counter("client.watch.subscribed").Inc()
	}
	return h, err
}

// subscribe opens one watch stream: it registers the stream BEFORE
// writing the request so an update racing ahead of the ack is queued,
// not lost, then waits for the subscribe ack.
func (mc *muxConn) subscribe(ctx context.Context, wr WatchRequest, cfg *ClientConfig) (*WatchHandle, error) {
	mc.mu.Lock()
	if mc.err != nil {
		err := mc.err
		mc.mu.Unlock()
		return nil, err
	}
	mc.nextID++
	id := mc.nextID
	ackCh := make(chan *response, 1)
	mc.calls[id] = ackCh
	w := &clientWatch{q: newWatchQueue(cfg.WatchQueueDepth)}
	mc.watches[id] = w
	mc.mu.Unlock()
	abort := func() {
		mc.mu.Lock()
		delete(mc.calls, id)
		delete(mc.watches, id)
		mc.mu.Unlock()
	}

	req := &request{Op: "watch", Watch: &wr, TraceID: telemetry.TraceFrom(ctx)}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			req.BudgetMS = rem.Seconds() * 1000
		}
	}
	if err := mc.writeMux(&muxFrame{Stream: id, Kind: mfRequest, Req: req}, cfg.writeBudget()); err != nil {
		abort()
		return nil, err
	}
	var timeout <-chan time.Time
	if cfg.CallTimeout > 0 {
		t := time.NewTimer(cfg.CallTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case resp := <-ackCh:
		if _, err := decodeResponse(resp); err != nil {
			abort()
			return nil, err
		}
	case <-ctx.Done():
		abort()
		mc.writeMux(&muxFrame{Stream: id, Kind: mfCancel}, cfg.writeBudget())
		return nil, ctxError(ctx)
	case <-timeout:
		abort()
		return nil, errCallTimeout
	case <-mc.done:
		abort()
		mc.mu.Lock()
		err := mc.err
		mc.mu.Unlock()
		return nil, err
	}

	h := newWatchHandle(0)
	mc.mu.Lock()
	if mc.err != nil {
		// The conn died between the ack and now; fail() already swept
		// the watch map, so surface the error directly.
		err := mc.err
		mc.mu.Unlock()
		return nil, err
	}
	w.handle = h
	mc.mu.Unlock()
	h.cancelFn = func() {
		mc.mu.Lock()
		delete(mc.watches, id)
		mc.mu.Unlock()
		// Best-effort: tell the server to stop pushing. Run it off the
		// canceller's goroutine — the write can block on a sick conn.
		go mc.writeMux(&muxFrame{Stream: id, Kind: mfCancel}, cfg.writeBudget())
	}
	stop := context.AfterFunc(ctx, h.Cancel)
	go w.forward(mc, h, stop)
	return h, nil
}

// forward drains one subscription's client-side queue onto its
// handle's channel, preserving order, until cancel, a Final update, or
// connection death (then pending updates still deliver first).
func (w *clientWatch) forward(mc *muxConn, h *WatchHandle, stop func() bool) {
	defer stop()
	defer close(h.out)
	deliver := func() bool { // false = stream over
		for {
			u, ok := w.q.pop()
			if !ok {
				return true
			}
			select {
			case h.out <- u:
			case <-h.cancelCh:
				return false
			}
			if u.Final {
				return false
			}
		}
	}
	for {
		select {
		case <-w.q.wake:
			if !deliver() {
				return
			}
		case <-h.cancelCh:
			return
		case <-mc.done:
			deliver()
			return
		}
	}
}

// decodeResponse maps a wire response to the client-side error surface:
// typed refusal codes become their sentinel errors; an Err string with
// codeOK is an authoritative application-level error.
func decodeResponse(resp *response) (*response, error) {
	switch resp.Code {
	case codeOK:
		if resp.Err != "" {
			if resp.Err == busyMsg {
				return resp, ErrServerBusy
			}
			return resp, fmt.Errorf("%s", resp.Err)
		}
		return resp, nil
	case codeBusy:
		return resp, ErrServerBusy
	case codeDeadline:
		return resp, fmt.Errorf("server refused: %w", ErrDeadlineExceeded)
	case codeShed:
		return resp, &ShedError{RetryAfter: time.Duration(resp.RetryAfterMS * float64(time.Millisecond))}
	case codeWatchLimit:
		return resp, ErrTooManySubscriptions
	case codeStale:
		return resp, ErrStaleReplica
	case codeNotLeader:
		return resp, &NotLeaderError{Leader: resp.LeaderHint}
	case codeMatrixSize:
		return resp, fmt.Errorf("%w (%s)", ErrMatrixTooLarge, resp.Err)
	case codeMatrixUnsup:
		return resp, ErrMatrixUnsupported
	default:
		return resp, fmt.Errorf("collector: unknown response code %d (%s)", resp.Code, resp.Err)
	}
}

// caller abstracts "send one request, get one response" so the Source
// method wrappers below are shared between Client (one connection) and
// FailoverSource (a replica set).
type caller interface {
	call(ctx context.Context, req *request) (*response, error)
}

func callTopology(ctx context.Context, c caller) (*Topology, error) {
	resp, err := c.call(ctx, &request{Op: "topo"})
	if err != nil {
		return nil, err
	}
	if resp.Topo == nil {
		return nil, fmt.Errorf("collector: server answered topology query without a topology")
	}
	return topoFromWireChecked(resp.Topo)
}

func callUtilization(ctx context.Context, c caller, key ChannelKey, span float64) (stats.Stat, error) {
	resp, err := c.call(ctx, &request{Op: "util", Key: key, Span: span})
	if err != nil {
		if resp != nil {
			return resp.Stat, err
		}
		return stats.NoData(), err
	}
	return resp.Stat, nil
}

func callSamples(ctx context.Context, c caller, key ChannelKey) ([]stats.Sample, error) {
	resp, err := c.call(ctx, &request{Op: "samples", Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Samples, nil
}

func callHostLoad(ctx context.Context, c caller, node graph.NodeID, span float64) (stats.Stat, error) {
	resp, err := c.call(ctx, &request{Op: "load", Node: string(node), Span: span})
	if err != nil {
		if resp != nil {
			return resp.Stat, err
		}
		return stats.NoData(), err
	}
	return resp.Stat, nil
}

func callDataAge(ctx context.Context, c caller, key ChannelKey) (float64, error) {
	resp, err := c.call(ctx, &request{Op: "age", Key: key})
	if err != nil {
		return 0, err
	}
	return resp.Age, nil
}

func callTelemetry(ctx context.Context, c caller) (*telemetry.Snapshot, error) {
	resp, err := c.call(ctx, &request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if resp.Telemetry == nil {
		return nil, fmt.Errorf("collector: server answered stats query without a snapshot")
	}
	return resp.Telemetry, nil
}

func callHealth(ctx context.Context, c caller) map[graph.NodeID]AgentHealth {
	resp, err := c.call(ctx, &request{Op: "health"})
	if err != nil {
		return nil
	}
	out := make(map[graph.NodeID]AgentHealth, len(resp.Health))
	for id, h := range resp.Health {
		out[graph.NodeID(id)] = h
	}
	return out
}

// Topology implements Source.
func (c *Client) Topology() (*Topology, error) { return callTopology(context.Background(), c) }

// TopologyCtx implements ContextSource.
func (c *Client) TopologyCtx(ctx context.Context) (*Topology, error) { return callTopology(ctx, c) }

// Utilization implements Source.
func (c *Client) Utilization(key ChannelKey, span float64) (stats.Stat, error) {
	return callUtilization(context.Background(), c, key, span)
}

// UtilizationCtx implements ContextSource.
func (c *Client) UtilizationCtx(ctx context.Context, key ChannelKey, span float64) (stats.Stat, error) {
	return callUtilization(ctx, c, key, span)
}

// Samples implements Source.
func (c *Client) Samples(key ChannelKey) ([]stats.Sample, error) {
	return callSamples(context.Background(), c, key)
}

// SamplesCtx implements ContextSource.
func (c *Client) SamplesCtx(ctx context.Context, key ChannelKey) ([]stats.Sample, error) {
	return callSamples(ctx, c, key)
}

// HostLoad implements Source.
func (c *Client) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	return callHostLoad(context.Background(), c, node, span)
}

// HostLoadCtx implements ContextSource.
func (c *Client) HostLoadCtx(ctx context.Context, node graph.NodeID, span float64) (stats.Stat, error) {
	return callHostLoad(ctx, c, node, span)
}

// DataAge implements Source.
func (c *Client) DataAge(key ChannelKey) (float64, error) {
	return callDataAge(context.Background(), c, key)
}

// DataAgeCtx implements ContextSource.
func (c *Client) DataAgeCtx(ctx context.Context, key ChannelKey) (float64, error) {
	return callDataAge(ctx, c, key)
}

// Health implements HealthSource: the remote collector's per-agent
// health snapshot (nil when the server cannot provide one).
func (c *Client) Health() map[graph.NodeID]AgentHealth {
	return callHealth(context.Background(), c)
}

// TelemetrySnapshot fetches the server's merged metrics snapshot (the
// "stats" op): the server's own registry plus its Source's, when the
// Source exposes one.
func (c *Client) TelemetrySnapshot(ctx context.Context) (*telemetry.Snapshot, error) {
	return callTelemetry(ctx, c)
}

// Ping issues a liveness round trip: any answer from the server counts.
func (c *Client) Ping() error {
	_, err := c.call(context.Background(), &request{Op: "ping"})
	return err
}

// PingCtx is Ping with a caller-supplied budget.
func (c *Client) PingCtx(ctx context.Context) error {
	_, err := c.call(ctx, &request{Op: "ping"})
	return err
}
