package collector

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// The TCP query service: how an application's Modeler reaches a
// Collector running as a separate process (the deployment in the paper's
// Figure 2). Virtual-time experiments use the Collector in-process; this
// service exists for daemon mode and is covered by real-socket
// integration tests.
//
// Wire format: length-prefixed gob frames (frame.go) carrying one
// request/response pair per round trip. Each request may carry a
// deadline-budget hint (BudgetMS); the server enforces it — a request
// whose budget expires in the admission queue or before compute starts
// is answered with a typed deadline refusal instead of a dead answer.

type wireNode struct {
	ID           string
	Kind         int
	InternalBW   float64
	ComputePower float64
	MemoryBytes  float64
}

type wireLink struct {
	A, B     string
	Capacity float64
	Latency  float64
	Global   int
}

type wireTopo struct {
	Nodes        []wireNode
	Links        []wireLink
	DiscoveredAt float64
}

func topoToWire(t *Topology) *wireTopo {
	w := &wireTopo{DiscoveredAt: t.DiscoveredAt}
	for _, id := range t.Graph.Nodes() {
		n := t.Graph.Node(id)
		w.Nodes = append(w.Nodes, wireNode{
			ID: string(n.ID), Kind: int(n.Kind),
			InternalBW: n.InternalBW, ComputePower: n.ComputePower,
			MemoryBytes: n.MemoryBytes,
		})
	}
	for _, l := range t.Graph.Links() {
		w.Links = append(w.Links, wireLink{
			A: string(l.A), B: string(l.B),
			Capacity: l.Capacity, Latency: l.Latency,
			Global: t.GlobalID[l.ID],
		})
	}
	return w
}

func topoFromWire(w *wireTopo) *Topology {
	g := graph.New()
	for _, n := range w.Nodes {
		g.AddNode(graph.Node{
			ID: graph.NodeID(n.ID), Kind: graph.NodeKind(n.Kind),
			InternalBW: n.InternalBW, ComputePower: n.ComputePower,
			MemoryBytes: n.MemoryBytes,
		})
	}
	t := &Topology{Graph: g, GlobalID: make(map[graph.LinkID]int), DiscoveredAt: w.DiscoveredAt}
	for _, l := range w.Links {
		gl := g.AddLink(graph.NodeID(l.A), graph.NodeID(l.B), l.Capacity, l.Latency)
		t.GlobalID[gl.ID] = l.Global
	}
	return t
}

type request struct {
	Op   string // "topo", "util", "samples", "load", "age", "health", "stats", "ping"
	Key  ChannelKey
	Span float64
	Node string

	// BudgetMS is the client's remaining time budget in milliseconds at
	// send time (0 = none declared; the server applies its
	// DefaultBudget). The server refuses with a typed deadline answer
	// instead of computing results the caller has already abandoned.
	BudgetMS float64

	// TraceID carries the request's trace across the wire ("" when the
	// caller's context carried none), so a client-side span and the
	// server-side span it caused share an ID.
	TraceID string
}

// Response refusal codes. CodeOK also covers application-level errors
// (Err set): the server answered, the answer is authoritative.
const (
	codeOK       = 0
	codeBusy     = 1 // connection cap (ErrServerBusy)
	codeDeadline = 2 // budget expired before an answer (ErrDeadlineExceeded)
	codeShed     = 3 // admission queue full (ErrLoadShed + retry-after)
)

type response struct {
	Err     string
	Stat    stats.Stat
	Samples []stats.Sample
	Topo    *wireTopo
	Age     float64
	Health  map[string]AgentHealth

	// Code distinguishes typed refusals from application errors;
	// RetryAfterMS accompanies codeShed.
	Code         int
	RetryAfterMS float64

	// Telemetry answers the "stats" op: the server's metrics registry
	// merged with its Source's, when the Source exposes one.
	Telemetry *telemetry.Snapshot
}

// init warms gob's type engines with representative wire values so the
// first real request on a fresh process does not pay engine compilation
// on top of its round trip. Nested fields are populated: gob builds
// engines lazily, per concrete type it actually sees.
func init() {
	warmGob(
		&request{Op: "ping", Key: ChannelKey{Global: 1}, Span: 1, Node: "n", BudgetMS: 1, TraceID: "t"},
		&response{
			Err:     "e",
			Stat:    stats.Stat{Min: 1, Q1: 1, Median: 1, Q3: 1, Max: 1, Accuracy: 1, Samples: 1, Age: 1},
			Samples: []stats.Sample{{Time: 1, Value: 1}},
			Topo: &wireTopo{
				Nodes:        []wireNode{{ID: "n", Kind: 1, InternalBW: 1, ComputePower: 1, MemoryBytes: 1}},
				Links:        []wireLink{{A: "a", B: "b", Capacity: 1, Latency: 1, Global: 1}},
				DiscoveredAt: 1,
			},
			Age:          1,
			Health:       map[string]AgentHealth{"n": {}},
			Code:         1,
			RetryAfterMS: 1,
			Telemetry:    &telemetry.Snapshot{Counters: map[string]uint64{"c": 1}},
		},
	)
}

// DefaultIdleTimeout is how long a connection may sit between requests
// (or mid-frame) before the server drops it: a client that connects and
// sends nothing — or a truncated frame — must not pin a goroutine and
// an FD forever.
const DefaultIdleTimeout = 2 * time.Minute

// ErrServerBusy is the typed refusal a server at its connection cap
// answers with instead of silently queueing the client. Clients surface
// it via errors.Is; FailoverSource treats it as "try another replica".
var ErrServerBusy = errors.New("collector: server busy")

// busyMsg is ErrServerBusy's wire form (errors don't cross gob).
var busyMsg = ErrServerBusy.Error()

// ServerConfig tunes the server's lifecycle protections. The zero value
// of each field selects its default.
type ServerConfig struct {
	// IdleTimeout is the per-connection read deadline between (and
	// within) request frames (default DefaultIdleTimeout); negative
	// disables it. It also bounds response writes, so a client that
	// stops reading cannot pin the serving goroutine.
	IdleTimeout time.Duration
	// MaxConns caps concurrently served connections; connections beyond
	// the cap are answered with ErrServerBusy and closed. Zero means
	// unlimited.
	MaxConns int

	// MaxInflight caps concurrent work units across all connections (a
	// weighted semaphore: topology queries cost 4 units, sample dumps 2,
	// everything else 1, pings are free). Zero disables admission
	// control.
	MaxInflight int
	// QueueDepth bounds how many requests may wait for work units;
	// arrivals beyond it are shed with a typed retry-after refusal.
	// Only meaningful with MaxInflight > 0; zero means no queue (shed
	// immediately when the semaphore is full).
	QueueDepth int
	// DefaultBudget is the per-request time budget applied when the
	// client declares none. Zero means unbudgeted requests wait at most
	// DefaultQueueWait in admission and are never refused for time.
	DefaultBudget time.Duration
	// MaxFrame bounds one wire frame in bytes (default
	// DefaultMaxFrame); oversized or corrupt length prefixes drop the
	// connection instead of driving an allocation.
	MaxFrame int

	// Telemetry is the registry the server records into (request spans,
	// per-op counters, admission metrics). Nil means the server creates
	// its own; it is always reachable via Server.Telemetry.
	Telemetry *telemetry.Registry
}

func (sc *ServerConfig) fill() {
	if sc.IdleTimeout == 0 {
		sc.IdleTimeout = DefaultIdleTimeout
	}
	if sc.MaxFrame <= 0 {
		sc.MaxFrame = DefaultMaxFrame
	}
}

// Server exposes a Source over TCP.
type Server struct {
	src  Source
	cfg  ServerConfig
	ln   net.Listener
	gate *workGate
	tel  *telemetry.Registry
	wg   sync.WaitGroup

	mu       sync.Mutex
	conns    map[net.Conn]*connState
	draining bool
}

// connState tracks whether a connection is mid-request (the server has
// decoded a request and not yet written its response). Draining closes
// idle connections immediately and lets busy ones finish.
type connState struct {
	busy bool
}

// Serve starts a query server on addr (e.g. "127.0.0.1:0") with default
// lifecycle protections.
func Serve(src Source, addr string) (*Server, error) {
	return ServeConfig(src, addr, ServerConfig{})
}

// ServeConfig starts a query server with explicit lifecycle protections.
func ServeConfig(src Source, addr string, cfg ServerConfig) (*Server, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	s := &Server{
		src: src, cfg: cfg, ln: ln,
		gate:  newWorkGate(cfg.MaxInflight, cfg.QueueDepth),
		tel:   tel,
		conns: make(map[net.Conn]*connState),
	}
	s.gate.instrument(tel)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// GateStats snapshots the admission gate's counters (zero value when
// admission control is disabled).
func (s *Server) GateStats() GateStats {
	if s.gate == nil {
		return GateStats{}
	}
	return s.gate.stats()
}

// Telemetry returns the server's metrics registry (never nil).
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// TelemetrySource is implemented by Sources that keep their own metrics
// registry (the in-process Collector, FailoverSource, Merged). The
// server's "stats" op merges it into the answer.
type TelemetrySource interface {
	Telemetry() *telemetry.Registry
}

// Close stops the server immediately: it stops accepting, force-closes
// active connections (in-flight requests see a write error), and waits
// for all serving goroutines. Use Shutdown for a graceful drain.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	s.draining = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Shutdown drains the server gracefully: it stops accepting, closes
// idle connections, lets in-flight requests finish for up to timeout,
// then force-closes whatever remains and waits for all serving
// goroutines. A non-positive timeout degenerates to Close.
func (s *Server) Shutdown(timeout time.Duration) error {
	err := s.ln.Close()
	s.mu.Lock()
	s.draining = true
	for c, st := range s.conns {
		if !st.busy {
			c.Close() // wakes the blocked read; the loop exits
		}
	}
	s.mu.Unlock()

	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			s.mu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.mu.Unlock()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.refuse(conn)
			}()
			continue
		}
		s.conns[conn] = &connState{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// refuse answers one over-cap connection with a typed busy error and
// closes it, so the client fails fast instead of queueing invisibly.
func (s *Server) refuse(conn net.Conn) {
	defer conn.Close()
	if s.cfg.IdleTimeout > 0 {
		conn.SetDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
	// Wait for the first request frame so the refusal pairs with a call
	// the client is actually waiting on, then answer it.
	var req request
	if err := readFrame(conn, &req, s.cfg.MaxFrame); err != nil {
		return
	}
	writeFrame(conn, &response{Err: busyMsg, Code: codeBusy}, s.cfg.MaxFrame)
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		s.mu.Lock()
		draining := s.draining
		st := s.conns[conn]
		s.mu.Unlock()
		if draining || st == nil {
			return
		}
		// Idle read deadline: a silent client, or one that sends half a
		// frame and stalls, loses the connection instead of holding it.
		if s.cfg.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
				return
			}
		}
		var req request
		if err := readFrame(conn, &req, s.cfg.MaxFrame); err != nil {
			// Oversized or malformed frames (ErrFrameTooLarge, bad gob)
			// drop only this connection: the stream cannot be resynced,
			// and answering garbage would reward a hostile peer.
			return
		}
		s.mu.Lock()
		st.busy = true
		s.mu.Unlock()
		resp := s.dispatch(&req)
		if s.cfg.IdleTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		err := writeFrame(conn, resp, s.cfg.MaxFrame)
		s.mu.Lock()
		st.busy = false
		s.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// dispatch runs one request through budget accounting and admission
// control before handing it to the Source. The order matters: the
// budget clock starts at arrival, the admission wait is charged against
// it, and a request that comes out of the queue with nothing left is
// refused, not computed.
func (s *Server) dispatch(req *request) *response {
	start := time.Now()
	s.tel.Counter("server.op." + req.Op).Inc()
	sp := s.tel.StartSpan(req.TraceID, "rpc."+req.Op)
	defer sp.Finish()
	var deadline time.Time
	if req.BudgetMS > 0 {
		deadline = start.Add(time.Duration(req.BudgetMS * float64(time.Millisecond)))
	} else if s.cfg.DefaultBudget > 0 {
		deadline = start.Add(s.cfg.DefaultBudget)
	}
	if w := opWeight(req.Op); s.gate != nil && w > 0 {
		if err := s.gate.acquire(w, deadline); err != nil {
			sp.SetAttr("verdict", verdictFor(err))
			return refusalResponse(err)
		}
		defer s.gate.release(w)
	}
	sp.SetAttr("queue_wait_ms", fmt.Sprintf("%.3f", float64(time.Since(start))/float64(time.Millisecond)))
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		sp.SetAttr("verdict", "deadline")
		return &response{Err: ErrDeadlineExceeded.Error(), Code: codeDeadline}
	}
	sp.SetAttr("verdict", "admitted")
	handleStart := time.Now()
	resp := s.handle(req)
	sp.SetAttr("handler_ms", fmt.Sprintf("%.3f", float64(time.Since(handleStart))/float64(time.Millisecond)))
	return resp
}

// verdictFor names a gate refusal for span records.
func verdictFor(err error) string {
	switch {
	case errors.Is(err, ErrLoadShed):
		return "shed"
	case errors.Is(err, ErrDeadlineExceeded):
		return "deadline"
	default:
		return "busy"
	}
}

// refusalResponse converts a gate error into its typed wire form.
func refusalResponse(err error) *response {
	if ra, ok := RetryAfterHint(err); ok {
		return &response{Err: err.Error(), Code: codeShed, RetryAfterMS: ra.Seconds() * 1000}
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		return &response{Err: err.Error(), Code: codeDeadline}
	}
	return &response{Err: busyMsg, Code: codeBusy}
}

// handle answers one request. A panicking Source must cost the client
// one errored response, never the daemon process: every shared-daemon
// deployment (the paper's Figure 2) has this property or doesn't scale
// past its first misbehaving query.
func (s *Server) handle(req *request) (resp *response) {
	resp = &response{}
	defer func() {
		if r := recover(); r != nil {
			log.Printf("collector: recovered panic serving %q: %v", req.Op, r)
			resp = &response{Err: fmt.Sprintf("collector: internal error serving %q: %v", req.Op, r)}
		}
	}()
	switch req.Op {
	case "topo":
		t, err := s.src.Topology()
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Topo = topoToWire(t)
		}
	case "util":
		st, err := s.src.Utilization(req.Key, req.Span)
		if err != nil {
			resp.Err = err.Error()
		}
		resp.Stat = st
	case "samples":
		sm, err := s.src.Samples(req.Key)
		if err != nil {
			resp.Err = err.Error()
		}
		resp.Samples = sm
	case "load":
		st, err := s.src.HostLoad(graph.NodeID(req.Node), req.Span)
		if err != nil {
			resp.Err = err.Error()
		}
		resp.Stat = st
	case "age":
		age, err := s.src.DataAge(req.Key)
		if err != nil {
			resp.Err = err.Error()
		}
		resp.Age = age
	case "health":
		if hs, ok := s.src.(HealthSource); ok {
			h := hs.Health()
			resp.Health = make(map[string]AgentHealth, len(h))
			for id, ah := range h {
				resp.Health[string(id)] = ah
			}
		} else {
			resp.Err = "collector: source does not track health"
		}
	case "stats":
		// Mirror the gate's instantaneous state into gauges so a snapshot
		// shows live pressure, not just cumulative counters.
		if s.gate != nil {
			gs := s.gate.stats()
			s.tel.Gauge("server.admission.in_use").Set(float64(gs.InUse))
			s.tel.Gauge("server.admission.queue_depth").Set(float64(gs.Queued))
		}
		snaps := []telemetry.Snapshot{s.tel.Snapshot()}
		if ts, ok := s.src.(TelemetrySource); ok {
			if reg := ts.Telemetry(); reg != nil {
				snaps = append(snaps, reg.Snapshot())
			}
		}
		snap := telemetry.MergeSnapshots(snaps...)
		resp.Telemetry = &snap
	case "ping":
		// Liveness probe: reaching the switch at all is the answer.
	default:
		resp.Err = fmt.Sprintf("collector: unknown op %q", req.Op)
	}
	return resp
}

// DefaultCallTimeout bounds one query round trip (dial + write + read):
// a hung or half-dead server must never block the Modeler forever.
const DefaultCallTimeout = 5 * time.Second

// DefaultRetryBackoff is the pause before the reconnect attempt after a
// failed call, giving a restarting server a moment to rebind.
const DefaultRetryBackoff = 100 * time.Millisecond

// ClientConfig tunes a client's failure behaviour. The zero value of
// each field selects its default.
type ClientConfig struct {
	// CallTimeout is the per-call I/O deadline (default
	// DefaultCallTimeout); negative disables deadlines. A sooner
	// context deadline tightens it per call.
	CallTimeout time.Duration
	// RetryBackoff is the wait between the failed attempt and the one
	// reconnect retry (default DefaultRetryBackoff); negative disables
	// the pause.
	RetryBackoff time.Duration
	// SingleAttempt disables the client's internal reconnect-and-retry.
	// FailoverSource sets it: when other replicas are available, trying
	// one of them beats retrying the replica that just failed.
	SingleAttempt bool
	// MaxFrame bounds one wire frame in bytes (default
	// DefaultMaxFrame): a corrupt length prefix from a sick server is
	// rejected with ErrFrameTooLarge instead of allocating.
	MaxFrame int

	// Telemetry, when non-nil, records per-call metrics (client.calls,
	// client.call.errors, client.call_ms). Nil disables client-side
	// metrics at zero cost.
	Telemetry *telemetry.Registry
}

func (cc *ClientConfig) fill() {
	if cc.CallTimeout == 0 {
		cc.CallTimeout = DefaultCallTimeout
	}
	if cc.RetryBackoff == 0 {
		cc.RetryBackoff = DefaultRetryBackoff
	}
	if cc.MaxFrame <= 0 {
		cc.MaxFrame = DefaultMaxFrame
	}
}

// Client is a Source backed by a remote collector service.
type Client struct {
	addr string
	cfg  ClientConfig
	tel  *telemetry.Registry // nil = client-side metrics disabled

	mu sync.Mutex // serializes calls: one request/response in flight

	// connMu guards only the connection pointer and the closed flag, so
	// Close can abort an in-flight call (whose goroutine holds mu)
	// instead of queueing behind it.
	connMu sync.Mutex
	conn   net.Conn
	closed bool
}

// Dial connects to a collector service with default timeouts.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a collector service with explicit failure
// behaviour.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	c := &Client{addr: addr, cfg: cfg, tel: cfg.Telemetry}
	if _, err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) connect() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.closed {
		conn.Close()
		return nil, errors.New("collector: client is closed")
	}
	c.conn = conn
	return conn, nil
}

func (c *Client) dialTimeout() time.Duration {
	if c.cfg.CallTimeout < 0 {
		return 0 // no limit
	}
	return c.cfg.CallTimeout
}

// Close tears down the connection. An in-flight call is aborted (its
// read fails immediately) rather than waited for.
func (c *Client) Close() error {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// dropConn discards a connection whose stream may be mid-frame: the
// next call reconnects on a clean one.
func (c *Client) dropConn() {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// call sends one request and reads its response, honouring ctx: the
// remaining context budget rides in the request frame as a hint for
// server-side enforcement, a sooner context deadline tightens the I/O
// deadline, and cancellation aborts an in-flight read immediately. A
// call that fails for any reason drops the connection (the stream may
// be mid-frame), so the next call starts clean.
func (c *Client) call(ctx context.Context, req *request) (_ *response, retErr error) {
	if err := ctxError(ctx); err != nil {
		return nil, err
	}
	req.TraceID = telemetry.TraceFrom(ctx)
	callStart := time.Now()
	defer func() {
		c.tel.Counter("client.calls").Inc()
		if retErr != nil {
			c.tel.Counter("client.call.errors").Inc()
		}
		c.tel.Quantile("client.call_ms", 0).
			Observe(float64(time.Since(callStart)) / float64(time.Millisecond))
	}()
	c.mu.Lock()
	defer c.mu.Unlock()
	attempt := func() (*response, error) {
		c.connMu.Lock()
		conn, closed := c.conn, c.closed
		c.connMu.Unlock()
		if closed {
			return nil, errors.New("collector: client is closed")
		}
		if conn == nil {
			var err error
			if conn, err = c.connect(); err != nil {
				return nil, err
			}
		}
		// Per-call I/O deadline: CallTimeout, tightened by the context.
		var deadline time.Time
		if c.cfg.CallTimeout > 0 {
			deadline = time.Now().Add(c.cfg.CallTimeout)
		}
		req.BudgetMS = 0
		if dl, ok := ctx.Deadline(); ok {
			if deadline.IsZero() || dl.Before(deadline) {
				deadline = dl
			}
			if rem := time.Until(dl); rem > 0 {
				req.BudgetMS = rem.Seconds() * 1000
			}
		}
		if !deadline.IsZero() {
			if err := conn.SetDeadline(deadline); err != nil {
				return nil, err
			}
		}
		// Cancellation mid-call: slam the connection deadline shut so a
		// blocked read returns now instead of at the I/O deadline.
		stop := context.AfterFunc(ctx, func() {
			conn.SetDeadline(time.Unix(1, 0))
		})
		defer stop()
		if err := writeFrame(conn, req, c.cfg.MaxFrame); err != nil {
			return nil, err
		}
		var resp response
		if err := readFrame(conn, &resp, c.cfg.MaxFrame); err != nil {
			return nil, err
		}
		return &resp, nil
	}
	resp, err := attempt()
	if err != nil {
		c.dropConn()
		if cerr := ctxCallError(ctx); cerr != nil {
			return nil, fmt.Errorf("%w (%v)", cerr, err)
		}
		// One reconnect after a short backoff: the server may be
		// restarting; retrying instantly tends to race its rebind. A
		// frame-size rejection is not retryable — the peer is broken.
		if c.cfg.SingleAttempt || errors.Is(err, ErrFrameTooLarge) {
			return nil, err
		}
		if c.cfg.RetryBackoff > 0 {
			t := time.NewTimer(c.cfg.RetryBackoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctxError(ctx)
			}
		}
		resp, err = attempt()
		if err != nil {
			c.dropConn()
			if cerr := ctxCallError(ctx); cerr != nil {
				return nil, fmt.Errorf("%w (%v)", cerr, err)
			}
			return nil, err
		}
	}
	return decodeResponse(resp)
}

// decodeResponse maps a wire response to the client-side error surface:
// typed refusal codes become their sentinel errors; an Err string with
// codeOK is an authoritative application-level error.
func decodeResponse(resp *response) (*response, error) {
	switch resp.Code {
	case codeOK:
		if resp.Err != "" {
			if resp.Err == busyMsg {
				return resp, ErrServerBusy
			}
			return resp, fmt.Errorf("%s", resp.Err)
		}
		return resp, nil
	case codeBusy:
		return resp, ErrServerBusy
	case codeDeadline:
		return resp, fmt.Errorf("server refused: %w", ErrDeadlineExceeded)
	case codeShed:
		return resp, &ShedError{RetryAfter: time.Duration(resp.RetryAfterMS * float64(time.Millisecond))}
	default:
		return resp, fmt.Errorf("collector: unknown response code %d (%s)", resp.Code, resp.Err)
	}
}

// caller abstracts "send one request, get one response" so the Source
// method wrappers below are shared between Client (one connection) and
// FailoverSource (a replica set).
type caller interface {
	call(ctx context.Context, req *request) (*response, error)
}

func callTopology(ctx context.Context, c caller) (*Topology, error) {
	resp, err := c.call(ctx, &request{Op: "topo"})
	if err != nil {
		return nil, err
	}
	if resp.Topo == nil {
		return nil, fmt.Errorf("collector: server answered topology query without a topology")
	}
	return topoFromWire(resp.Topo), nil
}

func callUtilization(ctx context.Context, c caller, key ChannelKey, span float64) (stats.Stat, error) {
	resp, err := c.call(ctx, &request{Op: "util", Key: key, Span: span})
	if err != nil {
		if resp != nil {
			return resp.Stat, err
		}
		return stats.NoData(), err
	}
	return resp.Stat, nil
}

func callSamples(ctx context.Context, c caller, key ChannelKey) ([]stats.Sample, error) {
	resp, err := c.call(ctx, &request{Op: "samples", Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Samples, nil
}

func callHostLoad(ctx context.Context, c caller, node graph.NodeID, span float64) (stats.Stat, error) {
	resp, err := c.call(ctx, &request{Op: "load", Node: string(node), Span: span})
	if err != nil {
		if resp != nil {
			return resp.Stat, err
		}
		return stats.NoData(), err
	}
	return resp.Stat, nil
}

func callDataAge(ctx context.Context, c caller, key ChannelKey) (float64, error) {
	resp, err := c.call(ctx, &request{Op: "age", Key: key})
	if err != nil {
		return 0, err
	}
	return resp.Age, nil
}

func callTelemetry(ctx context.Context, c caller) (*telemetry.Snapshot, error) {
	resp, err := c.call(ctx, &request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if resp.Telemetry == nil {
		return nil, fmt.Errorf("collector: server answered stats query without a snapshot")
	}
	return resp.Telemetry, nil
}

func callHealth(ctx context.Context, c caller) map[graph.NodeID]AgentHealth {
	resp, err := c.call(ctx, &request{Op: "health"})
	if err != nil {
		return nil
	}
	out := make(map[graph.NodeID]AgentHealth, len(resp.Health))
	for id, h := range resp.Health {
		out[graph.NodeID(id)] = h
	}
	return out
}

// Topology implements Source.
func (c *Client) Topology() (*Topology, error) { return callTopology(context.Background(), c) }

// TopologyCtx implements ContextSource.
func (c *Client) TopologyCtx(ctx context.Context) (*Topology, error) { return callTopology(ctx, c) }

// Utilization implements Source.
func (c *Client) Utilization(key ChannelKey, span float64) (stats.Stat, error) {
	return callUtilization(context.Background(), c, key, span)
}

// UtilizationCtx implements ContextSource.
func (c *Client) UtilizationCtx(ctx context.Context, key ChannelKey, span float64) (stats.Stat, error) {
	return callUtilization(ctx, c, key, span)
}

// Samples implements Source.
func (c *Client) Samples(key ChannelKey) ([]stats.Sample, error) {
	return callSamples(context.Background(), c, key)
}

// SamplesCtx implements ContextSource.
func (c *Client) SamplesCtx(ctx context.Context, key ChannelKey) ([]stats.Sample, error) {
	return callSamples(ctx, c, key)
}

// HostLoad implements Source.
func (c *Client) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	return callHostLoad(context.Background(), c, node, span)
}

// HostLoadCtx implements ContextSource.
func (c *Client) HostLoadCtx(ctx context.Context, node graph.NodeID, span float64) (stats.Stat, error) {
	return callHostLoad(ctx, c, node, span)
}

// DataAge implements Source.
func (c *Client) DataAge(key ChannelKey) (float64, error) {
	return callDataAge(context.Background(), c, key)
}

// DataAgeCtx implements ContextSource.
func (c *Client) DataAgeCtx(ctx context.Context, key ChannelKey) (float64, error) {
	return callDataAge(ctx, c, key)
}

// Health implements HealthSource: the remote collector's per-agent
// health snapshot (nil when the server cannot provide one).
func (c *Client) Health() map[graph.NodeID]AgentHealth {
	return callHealth(context.Background(), c)
}

// TelemetrySnapshot fetches the server's merged metrics snapshot (the
// "stats" op): the server's own registry plus its Source's, when the
// Source exposes one.
func (c *Client) TelemetrySnapshot(ctx context.Context) (*telemetry.Snapshot, error) {
	return callTelemetry(ctx, c)
}

// Ping issues a liveness round trip: any answer from the server counts.
func (c *Client) Ping() error {
	_, err := c.call(context.Background(), &request{Op: "ping"})
	return err
}

// PingCtx is Ping with a caller-supplied budget.
func (c *Client) PingCtx(ctx context.Context) error {
	_, err := c.call(ctx, &request{Op: "ping"})
	return err
}
