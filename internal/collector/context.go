package collector

import (
	"context"

	"repro/internal/graph"
	"repro/internal/stats"
)

// ContextSource is the context-aware variant of Source. Remote-backed
// sources (Client, FailoverSource) implement it to derive per-call I/O
// deadlines from ctx, forward the remaining budget to the server, and
// abort in-flight reads on cancellation. In-process sources implement
// it trivially (answers are immediate), but implementing it still lets
// a caller's dead context short-circuit a query between steps.
type ContextSource interface {
	TopologyCtx(ctx context.Context) (*Topology, error)
	UtilizationCtx(ctx context.Context, key ChannelKey, span float64) (stats.Stat, error)
	SamplesCtx(ctx context.Context, key ChannelKey) ([]stats.Sample, error)
	HostLoadCtx(ctx context.Context, node graph.NodeID, span float64) (stats.Stat, error)
	DataAgeCtx(ctx context.Context, key ChannelKey) (float64, error)
}

// The CtxXxx helpers are the one place that bridges a context onto an
// arbitrary Source: sources that implement ContextSource get the real
// ctx; plain sources get a liveness check before the blocking call (the
// best a context-unaware implementation allows). The Modeler calls
// through these so any Source composes with deadlines.

// CtxTopology is Topology with a context.
func CtxTopology(ctx context.Context, s Source) (*Topology, error) {
	if err := ctxError(ctx); err != nil {
		return nil, err
	}
	if cs, ok := s.(ContextSource); ok {
		return cs.TopologyCtx(ctx)
	}
	return s.Topology()
}

// CtxUtilization is Utilization with a context.
func CtxUtilization(ctx context.Context, s Source, key ChannelKey, span float64) (stats.Stat, error) {
	if err := ctxError(ctx); err != nil {
		return stats.NoData(), err
	}
	if cs, ok := s.(ContextSource); ok {
		return cs.UtilizationCtx(ctx, key, span)
	}
	return s.Utilization(key, span)
}

// CtxSamples is Samples with a context.
func CtxSamples(ctx context.Context, s Source, key ChannelKey) ([]stats.Sample, error) {
	if err := ctxError(ctx); err != nil {
		return nil, err
	}
	if cs, ok := s.(ContextSource); ok {
		return cs.SamplesCtx(ctx, key)
	}
	return s.Samples(key)
}

// CtxHostLoad is HostLoad with a context.
func CtxHostLoad(ctx context.Context, s Source, node graph.NodeID, span float64) (stats.Stat, error) {
	if err := ctxError(ctx); err != nil {
		return stats.NoData(), err
	}
	if cs, ok := s.(ContextSource); ok {
		return cs.HostLoadCtx(ctx, node, span)
	}
	return s.HostLoad(node, span)
}

// CtxDataAge is DataAge with a context.
func CtxDataAge(ctx context.Context, s Source, key ChannelKey) (float64, error) {
	if err := ctxError(ctx); err != nil {
		return 0, err
	}
	if cs, ok := s.(ContextSource); ok {
		return cs.DataAgeCtx(ctx, key)
	}
	return s.DataAge(key)
}
