package collector

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// TestFrameRoundTrip: request and response frames survive the wire.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := request{Op: "util", Key: ChannelKey{Global: 7}, Span: 2.5, BudgetMS: 43.5}
	if err := writeFrame(&buf, &in, 0); err != nil {
		t.Fatal(err)
	}
	var out request
	if err := readFrame(&buf, &out, 0); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

// TestFrameIndependentStreams: each frame is a self-contained gob
// stream, so a reader can start at any frame boundary — the property
// that makes reconnect-after-abort safe.
func TestFrameIndependentStreams(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := writeFrame(&buf, &request{Op: "ping"}, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Skip the first frame entirely, then decode the second from the
	// boundary.
	var hdr [4]byte
	if _, err := io.ReadFull(&buf, hdr[:]); err != nil {
		t.Fatal(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	buf.Next(int(n))
	var out request
	if err := readFrame(&buf, &out, 0); err != nil {
		t.Fatalf("decoding from a later frame boundary: %v", err)
	}
	if out.Op != "ping" {
		t.Fatalf("got %+v", out)
	}
}

// TestFrameOversizedWriteRejected: an over-limit message is refused at
// encode time with the typed error.
func TestFrameOversizedWriteRejected(t *testing.T) {
	var buf bytes.Buffer
	big := response{Err: string(make([]byte, 4096))}
	err := writeFrame(&buf, &big, 128)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("rejected frame still wrote %d bytes", buf.Len())
	}
}

// TestFrameHostilePrefixRejected: a length prefix claiming a huge
// payload is rejected before any allocation or payload read.
func TestFrameHostilePrefixRejected(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0xFFFF_FFFF) // claims ~4 GiB
	r := &countingReader{r: bytes.NewReader(hdr[:])}
	var out response
	err := readFrame(r, &out, DefaultMaxFrame)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if r.n > 4 {
		t.Fatalf("read %d bytes past the rejected prefix", r.n)
	}
}

// TestFrameTruncatedPayload: a frame cut off mid-payload fails with an
// I/O error, not a hang or a panic.
func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, &request{Op: "topo"}, 0); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	var out request
	err := readFrame(bytes.NewReader(cut), &out, 0)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame: got %v, want ErrUnexpectedEOF", err)
	}
}

// TestFrameCorruptPayload: a well-sized but non-gob payload errors
// cleanly.
func TestFrameCorruptPayload(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("\xff\xfe\xfdnot gob")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	var out request
	if err := readFrame(&buf, &out, 0); err == nil {
		t.Fatal("corrupt payload decoded without error")
	}
}

type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}
