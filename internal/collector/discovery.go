package collector

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/snmp"
)

// ifaceInfo is one row of an agent's interface table, joined with the
// Remos enterprise columns.
type ifaceInfo struct {
	index     uint32
	neighbor  string
	global    int // global link ID
	speed     float64
	inOctets  uint32
	outOctets uint32
}

// walkInterfaces reads an agent's interface table. GETBULK keeps the
// round-trip count low — the recurring cost the paper says must stay
// "low and directly related to the depth and frequency of requests".
func (c *Collector) walkInterfaces(addr string) ([]ifaceInfo, error) {
	nbrs, err := c.cfg.Client.BulkWalk(addr, snmp.OIDRemosNeighbor, 16)
	if err != nil {
		return nil, err
	}
	out := make([]ifaceInfo, 0, len(nbrs))
	for _, vb := range nbrs {
		idx := vb.OID[len(vb.OID)-1]
		vbs, err := c.cfg.Client.Get(addr,
			snmp.OIDRemosLinkID.Append(idx),
			snmp.OIDIfSpeed.Append(idx),
			snmp.OIDIfInOctets.Append(idx),
			snmp.OIDIfOutOctets.Append(idx),
		)
		if err != nil {
			return nil, err
		}
		// Edge validation: a capacity entering the topology must be a
		// finite positive number. SNMP's ifSpeed is unsigned today, but
		// this is the ingest boundary — maxmin's guards downstream are
		// the second line of defense, not the first.
		speed := float64(vbs[1].Value.Uint)
		if math.IsNaN(speed) || math.IsInf(speed, 0) || speed <= 0 {
			return nil, fmt.Errorf("collector: agent %s ifindex %d reports invalid link speed %v", addr, idx, speed)
		}
		out = append(out, ifaceInfo{
			index:     idx,
			neighbor:  string(vb.Value.Bytes),
			global:    int(vbs[0].Value.Int),
			speed:     speed,
			inOctets:  vbs[2].Value.Uint,
			outOctets: vbs[3].Value.Uint,
		})
	}
	return out, nil
}

// nodeInfo is the per-node discovery record.
type nodeInfo struct {
	name       string
	kind       graph.NodeKind
	internalBW float64
	memory     float64 // bytes; hosts only
	ifaces     []ifaceInfo
}

func (c *Collector) queryNode(addr string) (*nodeInfo, error) {
	vbs, err := c.cfg.Client.Get(addr, snmp.OIDSysName, snmp.OIDRemosNodeKind, snmp.OIDRemosInternalBW)
	if err != nil {
		return nil, err
	}
	ni := &nodeInfo{
		name:       string(vbs[0].Value.Bytes),
		internalBW: float64(vbs[2].Value.Uint),
	}
	if vbs[1].Value.Int == 1 {
		ni.kind = graph.Network
	} else {
		ni.kind = graph.Compute
		// Memory is optional (not every agent exposes it).
		if mem, err := c.cfg.Client.Get(addr, snmp.OIDHrMemorySize); err == nil && len(mem) == 1 {
			ni.memory = float64(mem[0].Value.Int) * 1024
		}
	}
	ni.ifaces, err = c.walkInterfaces(addr)
	if err != nil {
		return nil, err
	}
	return ni, nil
}

// Discover queries every agent in the domain and assembles the Topology.
// Nodes whose agents fail are reported as an error only if nothing could
// be discovered; partial domains are normal (other collectors cover the
// rest).
func (c *Collector) Discover() (*Topology, error) {
	wallStart := time.Now()
	defer func() {
		c.tel.Counter("collector.discoveries").Inc()
		c.tel.Quantile("collector.discovery.wall_ms", 0).
			Observe(float64(time.Since(wallStart)) / float64(time.Millisecond))
	}()
	type linkRec struct {
		a, b     string // canonical: a < b
		capacity float64
	}
	nodes := make(map[string]*nodeInfo)
	links := make(map[int]linkRec)
	live := make(map[string]bool)
	now := float64(c.cfg.Clock.Now())
	var firstErr error
	// remember falls back to the last good discovery record for an agent
	// the breaker is skipping or that just failed: the dead router stays
	// in the topology with its links (partial-topology serving) and only
	// its measurements go stale.
	remember := func(id graph.NodeID) {
		c.mu.Lock()
		ni := c.lastNode[id]
		c.mu.Unlock()
		if ni != nil {
			nodes[ni.name] = ni
		}
	}
	for _, id := range c.sortedNodes() {
		// The breaker throttles discovery the same way it throttles
		// polling: a Down agent is re-probed on the backoff schedule, and
		// a successful probe here is how it rejoins the topology.
		if !c.allowAttempt(id, now) {
			remember(id)
			continue
		}
		ni, err := c.queryNode(c.cfg.Addrs[id])
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("collector: discovering %q: %w", id, err)
			}
			c.recordFailure(id, now)
			remember(id)
			continue
		}
		c.recordSuccess(id, now)
		c.mu.Lock()
		c.lastNode[id] = ni
		c.mu.Unlock()
		nodes[ni.name] = ni
		live[ni.name] = true
	}
	if len(nodes) == 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("collector: empty domain")
	}

	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	// Links reported by live agents win and are cross-checked against
	// each other; remembered (stale) records only fill in links no live
	// agent covers — e.g. a backbone link whose both ends are dark — and
	// are exempt from conflict checks, since a link may well have changed
	// while its reporter was unreachable.
	for pass := 0; pass < 2; pass++ {
		for _, n := range names {
			if live[n] != (pass == 0) {
				continue
			}
			for _, iface := range nodes[n].ifaces {
				a, b := n, iface.neighbor
				if a > b {
					a, b = b, a
				}
				if prev, ok := links[iface.global]; ok {
					if pass == 1 {
						continue
					}
					if prev.a != a || prev.b != b {
						return nil, fmt.Errorf("collector: link %d reported as %s--%s and %s--%s",
							iface.global, prev.a, prev.b, a, b)
					}
					if prev.capacity != iface.speed {
						return nil, fmt.Errorf("collector: link %d speed mismatch %v vs %v",
							iface.global, prev.capacity, iface.speed)
					}
					continue
				}
				links[iface.global] = linkRec{a: a, b: b, capacity: iface.speed}
			}
		}
	}

	g := graph.New()
	for _, n := range names {
		ni := nodes[n]
		if ni.kind == graph.Network {
			g.AddRouter(graph.NodeID(n), ni.internalBW)
		} else {
			g.AddNode(graph.Node{
				ID: graph.NodeID(n), Kind: graph.Compute,
				ComputePower: 1, MemoryBytes: ni.memory,
			})
		}
	}
	// Leaf neighbors we only heard about from the far end (hosts without
	// their own agents, or nodes outside the domain) still belong in the
	// topology; without better information they default to hosts.
	for _, n := range names {
		for _, iface := range nodes[n].ifaces {
			if !g.HasNode(graph.NodeID(iface.neighbor)) {
				g.AddHost(graph.NodeID(iface.neighbor), 1)
			}
		}
	}

	globals := make([]int, 0, len(links))
	for id := range links {
		globals = append(globals, id)
	}
	sort.Ints(globals)
	topo := &Topology{
		Graph:        g,
		GlobalID:     make(map[graph.LinkID]int),
		DiscoveredAt: float64(c.cfg.Clock.Now()),
	}
	for _, gid := range globals {
		rec := links[gid]
		l := g.AddLink(graph.NodeID(rec.a), graph.NodeID(rec.b), rec.capacity, c.cfg.PerHopLatency)
		topo.GlobalID[l.ID] = gid
		// Record capacities for both directions.
		c.mu.Lock()
		c.capacity[ChannelKey{Global: gid, Dir: graph.AtoB}] = rec.capacity
		c.capacity[ChannelKey{Global: gid, Dir: graph.BtoA}] = rec.capacity
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.topo = topo
	c.discoveries++
	c.mu.Unlock()
	c.dataVersion.Add(1)
	c.notifyVersion()
	if firstErr != nil {
		// The topology assembled, but at least one agent went unheard:
		// partial-topology serving is in effect.
		c.tel.Counter("collector.discovery.partial").Inc()
	}
	return topo, nil
}
