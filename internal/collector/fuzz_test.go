package collector

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/stats"
)

// FuzzReadFrame feeds arbitrary bytes to the wire-frame reader on both
// sides of the protocol (request decode on the server, response decode
// on the client). Hostile input — corrupt gob, lying length prefixes,
// truncation — must produce an error, never a panic and never an
// allocation beyond the frame cap.
func FuzzReadFrame(f *testing.F) {
	add := func(v any) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, v, 0); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	add(&request{Op: "util", Key: ChannelKey{Global: 3}, Span: 5, BudgetMS: 12.5})
	add(&request{Op: "topo"})
	add(&response{Stat: stats.Exact(42e6), Code: codeOK})
	add(&response{Err: "collector: load shed (retry after 50ms)", Code: codeShed, RetryAfterMS: 50})

	hostile := make([]byte, 4)
	binary.BigEndian.PutUint32(hostile, 0xFFFF_FFFF)
	f.Add(hostile)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 5, 1, 2}) // truncated payload

	const maxFrame = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		var req request
		if err := readFrame(bytes.NewReader(data), &req, maxFrame); err == nil {
			// A frame the server accepts must be re-encodable: the field
			// values gob produced are within what writeFrame handles.
			var out bytes.Buffer
			if err := writeFrame(&out, &req, 0); err != nil {
				t.Fatalf("accepted request does not re-encode: %v (%+v)", err, req)
			}
		}
		var resp response
		if err := readFrame(bytes.NewReader(data), &resp, maxFrame); err == nil {
			var out bytes.Buffer
			if err := writeFrame(&out, &resp, 0); err != nil {
				t.Fatalf("accepted response does not re-encode: %v", err)
			}
		}
	})
}

// FuzzReadMuxFrame is FuzzReadFrame for the multiplexed envelope: the
// shape both sides actually read since framing moved to stream IDs. A
// hostile envelope — wild stream IDs, unknown kinds, nested garbage in
// the request/response/update arms — must error or decode to something
// re-encodable, never panic.
func FuzzReadMuxFrame(f *testing.F) {
	add := func(v any) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, v, 0); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	add(&muxFrame{Stream: 1, Kind: mfRequest,
		Req: &request{Op: "util", Key: ChannelKey{Global: 3}, Span: 5, BudgetMS: 12.5}})
	add(&muxFrame{Stream: 2, Kind: mfRequest,
		Req: &request{Op: "watch", Watch: &WatchRequest{Kind: WatchUtil, Key: ChannelKey{Global: 1}, Span: 5, Threshold: 1e6}}})
	add(&muxFrame{Stream: 2, Kind: mfResponse,
		Resp: &response{Err: "collector: too many subscriptions", Code: codeWatchLimit}})
	add(&muxFrame{Stream: 2, Kind: mfUpdate,
		Update: &WatchUpdate{Seq: 7, Epoch: 41, Overflowed: true, Stat: stats.Exact(42e6)}})
	add(&muxFrame{Stream: 9, Kind: mfUpdate, Update: &WatchUpdate{Final: true}})
	add(&muxFrame{Stream: 2, Kind: mfCancel})

	hostile := make([]byte, 4)
	binary.BigEndian.PutUint32(hostile, 0xFFFF_FFFF)
	f.Add(hostile)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 5, 1, 2}) // truncated payload

	const maxFrame = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		var mf muxFrame
		if err := readFrame(bytes.NewReader(data), &mf, maxFrame); err == nil {
			var out bytes.Buffer
			if err := writeFrame(&out, &mf, 0); err != nil {
				t.Fatalf("accepted mux frame does not re-encode: %v (%+v)", err, mf)
			}
		}
	})
}
