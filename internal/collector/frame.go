package collector

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Bounded wire framing for the TCP query protocol. Each message is a
// 4-byte big-endian length prefix followed by a self-contained gob
// stream. The explicit prefix exists so both ends can reject an
// oversized frame *before* allocating or decoding anything: a corrupt
// or hostile length must cost a bounded read and a typed error, never
// an unbounded allocation (raw gob will happily try to buffer whatever
// its own internal length header claims, up to 1 GiB).
//
// Every frame is an independent gob stream (type information is resent
// per frame). That costs a few hundred bytes per message and buys a
// crucial property: a connection aborted mid-frame — a cancelled call,
// a killed replica — never poisons decoder state for the next request,
// so reconnect-and-retry works without resynchronization.

// DefaultMaxFrame bounds one wire frame in bytes. Topology frames for
// very large domains are the biggest legitimate messages; 4 MiB covers
// tens of thousands of links with an order of magnitude to spare.
const DefaultMaxFrame = 4 << 20

// ErrFrameTooLarge is the typed rejection for a frame whose length
// prefix exceeds the configured cap — on read (corrupt or hostile
// prefix) or on write (a response that should never have grown so big).
var ErrFrameTooLarge = errors.New("collector: wire frame too large")

// maxPooledFrame caps what the buffer pools retain: a rare multi-
// megabyte topology frame must not pin its buffer for the life of the
// process. Typical measurement frames are well under a kilobyte.
const maxPooledFrame = 1 << 18

// frameBufPool recycles encode buffers. A busy query server writes one
// frame per request; the buffer is dead the moment it hits the socket.
var frameBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// framePayloadPool recycles read-side payload buffers the same way.
var framePayloadPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// writeFrame encodes v as one length-prefixed gob frame on w.
func writeFrame(w io.Writer, v any, max int) error {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	buf := frameBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= maxPooledFrame {
			buf.Reset()
			frameBufPool.Put(buf)
		}
	}()
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return fmt.Errorf("collector: encoding frame: %w", err)
	}
	payload := buf.Len() - 4
	if payload > max {
		return fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, payload, max)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(payload))
	_, err := w.Write(b)
	return err
}

// readFrame reads one length-prefixed gob frame from r into v,
// rejecting frames over max bytes without reading (or allocating) their
// payload. The payload buffer is pooled; gob copies everything it
// decodes into v, so nothing aliases the buffer after return.
func readFrame(r io.Reader, v any, max int) error {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(max) {
		return fmt.Errorf("%w: prefix claims %d > %d bytes", ErrFrameTooLarge, n, max)
	}
	pp := framePayloadPool.Get().(*[]byte)
	defer func() {
		if cap(*pp) <= maxPooledFrame {
			framePayloadPool.Put(pp)
		}
	}()
	if cap(*pp) < int(n) {
		*pp = make([]byte, n)
	}
	payload := (*pp)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("collector: decoding frame: %w", err)
	}
	return nil
}

// warmGob runs representative wire values through a throwaway
// encode/decode round so gob compiles its type engines at package init
// instead of on the first request of the first connection. Frames stay
// independent gob streams on the wire — that is what makes
// reconnect-after-abort safe — but engine compilation is process-global
// and only needs to happen once.
func warmGob(vals ...any) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, v := range vals {
		if err := enc.Encode(v); err != nil {
			panic(fmt.Sprintf("collector: gob warm-up encode: %v", err))
		}
	}
	dec := gob.NewDecoder(&buf)
	for _, v := range vals {
		if err := dec.Decode(v); err != nil {
			panic(fmt.Sprintf("collector: gob warm-up decode: %v", err))
		}
	}
}
