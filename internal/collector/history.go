package collector

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/stats"
)

// History persistence: the paper cites Dinda's "database of historical
// load information" as one way applications learn about resources. A
// collector can dump its measurement state to a stream; a Replay source
// serves the dump offline, letting a Modeler answer queries about a
// network it is no longer connected to (post-mortem analysis, capacity
// planning, tests with recorded traces).

// historyDump is the serialized form.
type historyDump struct {
	Topo     *WireTopo
	Channels map[ChannelKey][]stats.Sample
	Capacity map[ChannelKey]float64
	Loads    map[string][]stats.Sample
}

// SaveHistory writes the collector's topology and all measurement
// windows to w (gob-encoded).
func (c *Collector) SaveHistory(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.topo == nil {
		return fmt.Errorf("collector: nothing to save before discovery")
	}
	dump := historyDump{
		Topo:     topoToWire(c.topo),
		Channels: make(map[ChannelKey][]stats.Sample, len(c.windows)),
		Capacity: make(map[ChannelKey]float64, len(c.capacity)),
		Loads:    make(map[string][]stats.Sample, len(c.loads)),
	}
	for k, win := range c.windows {
		dump.Channels[k] = win.Samples()
	}
	for k, v := range c.capacity {
		dump.Capacity[k] = v
	}
	for id, win := range c.loads {
		dump.Loads[string(id)] = win.Samples()
	}
	return gob.NewEncoder(w).Encode(&dump)
}

// Replay is a read-only Source backed by a saved history.
type Replay struct {
	topo     *Topology
	channels map[ChannelKey]*stats.Window
	loads    map[graph.NodeID]*stats.Window
}

// LoadHistory reads a dump written by SaveHistory.
func LoadHistory(r io.Reader) (*Replay, error) {
	var dump historyDump
	if err := gob.NewDecoder(r).Decode(&dump); err != nil {
		return nil, fmt.Errorf("collector: loading history: %w", err)
	}
	if dump.Topo == nil {
		return nil, fmt.Errorf("collector: history has no topology")
	}
	rp := &Replay{
		topo:     topoFromWire(dump.Topo),
		channels: make(map[ChannelKey]*stats.Window, len(dump.Channels)),
		loads:    make(map[graph.NodeID]*stats.Window, len(dump.Loads)),
	}
	fill := func(samples []stats.Sample) (*stats.Window, error) {
		n := len(samples)
		if n == 0 {
			n = 1
		}
		w := stats.NewWindow(n, 0)
		for _, s := range samples {
			if err := w.Add(s.Time, s.Value); err != nil {
				return nil, fmt.Errorf("collector: corrupt history: %w", err)
			}
		}
		return w, nil
	}
	for k, samples := range dump.Channels {
		w, err := fill(samples)
		if err != nil {
			return nil, err
		}
		rp.channels[k] = w
	}
	for id, samples := range dump.Loads {
		w, err := fill(samples)
		if err != nil {
			return nil, err
		}
		rp.loads[graph.NodeID(id)] = w
	}
	return rp, nil
}

// Topology implements Source.
func (r *Replay) Topology() (*Topology, error) { return r.topo, nil }

// Utilization implements Source.
func (r *Replay) Utilization(key ChannelKey, span float64) (stats.Stat, error) {
	w := r.channels[key]
	if w == nil {
		return stats.NoData(), fmt.Errorf("collector: no recorded data for %v", key)
	}
	return w.Summary(span), nil
}

// Samples implements Source.
func (r *Replay) Samples(key ChannelKey) ([]stats.Sample, error) {
	w := r.channels[key]
	if w == nil {
		return nil, fmt.Errorf("collector: no recorded data for %v", key)
	}
	return w.Samples(), nil
}

// HostLoad implements Source.
func (r *Replay) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	w := r.loads[node]
	if w == nil {
		return stats.NoData(), fmt.Errorf("collector: no recorded load for %q", node)
	}
	return w.Summary(span), nil
}

// DataAge implements Source. Recorded data has no live reference clock;
// a replayed trace is by definition as fresh as it will ever be, so the
// age is zero for channels the dump contains.
func (r *Replay) DataAge(key ChannelKey) (float64, error) {
	if r.channels[key] == nil {
		return 0, fmt.Errorf("collector: no recorded data for %v", key)
	}
	return 0, nil
}
