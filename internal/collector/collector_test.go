package collector

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// rig is a full testbed with agents and one collector over everything.
type rig struct {
	clk *simclock.Clock
	net *netsim.Network
	att *snmp.AttachedAgents
	col *Collector
}

func newRig(t *testing.T, pollPeriod float64) *rig {
	t.Helper()
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := New(Config{
		Client:        snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:         clk,
		Addrs:         addrs,
		PollPeriod:    pollPeriod,
		PerHopLatency: topology.PerHopLatency,
	})
	return &rig{clk: clk, net: n, att: att, col: col}
}

// keyFor returns the ChannelKey for traffic flowing from `from` to `to`
// over their direct link in the discovered topology.
func keyFor(t *testing.T, topo *Topology, from, to graph.NodeID) ChannelKey {
	t.Helper()
	for _, l := range topo.Graph.Links() {
		if (l.A == from && l.B == to) || (l.A == to && l.B == from) {
			return topo.Key(l, l.DirFrom(from))
		}
	}
	t.Fatalf("no link %s--%s", from, to)
	return ChannelKey{}
}

func TestDiscovery(t *testing.T) {
	r := newRig(t, 2)
	topo, err := r.col.Discover()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Graph
	if got := len(g.ComputeNodes()); got != 8 {
		t.Fatalf("hosts = %d", got)
	}
	if got := len(g.NetworkNodes()); got != 3 {
		t.Fatalf("routers = %d", got)
	}
	if g.NumLinks() != 10 {
		t.Fatalf("links = %d", g.NumLinks())
	}
	for _, l := range g.Links() {
		if l.Capacity != 100e6 {
			t.Fatalf("link capacity = %v", l.Capacity)
		}
		if l.Latency != topology.PerHopLatency {
			t.Fatalf("link latency = %v", l.Latency)
		}
	}
	// Global IDs must be unique and cover all links.
	seen := map[int]bool{}
	for _, gid := range topo.GlobalID {
		if seen[gid] {
			t.Fatalf("duplicate global ID %d", gid)
		}
		seen[gid] = true
	}
	// Discovered topology must route like the real one.
	rt, err := g.Routes()
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Route("m-6", "m-8")
	if p.Nodes[1] != "timberline" || p.Nodes[2] != "whiteface" {
		t.Fatalf("route = %v", p)
	}
	// Capacities recorded per channel.
	k := keyFor(t, topo, "timberline", "whiteface")
	if capa, ok := r.col.Capacity(k); !ok || capa != 100e6 {
		t.Fatalf("capacity = %v, %v", capa, ok)
	}
}

func TestTopologyBeforeDiscoveryFails(t *testing.T) {
	r := newRig(t, 2)
	if _, err := r.col.Topology(); err == nil {
		t.Fatal("expected error before discovery")
	}
}

func TestPollingMeasuresCBR(t *testing.T) {
	r := newRig(t, 2)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	traffic.Blast(r.net, "m-6", "m-8", 60e6)
	r.clk.RunUntil(61)
	topo, _ := r.col.Topology()
	k := keyFor(t, topo, "timberline", "whiteface")
	st, err := r.col.Utilization(k, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Median-60e6) > 1e4 {
		t.Fatalf("utilization = %v, want ~60e6", st)
	}
	if st.Accuracy <= 0.5 {
		t.Fatalf("accuracy = %v", st.Accuracy)
	}
	// Reverse direction is idle.
	rk := keyFor(t, topo, "whiteface", "timberline")
	rst, _ := r.col.Utilization(rk, 30)
	if rst.Median > 1 {
		t.Fatalf("reverse utilization = %v", rst)
	}
	if r.col.Polls() < 30 {
		t.Fatalf("polls = %d", r.col.Polls())
	}
	r.col.Stop()
	before := r.col.Polls()
	r.clk.Advance(20)
	if r.col.Polls() != before {
		t.Fatal("polling continued after Stop")
	}
}

func TestPollingSeesTrafficChanges(t *testing.T) {
	r := newRig(t, 1)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	// 30s idle, then 30s of 80 Mbps.
	r.clk.RunUntil(30)
	g := traffic.Blast(r.net, "m-6", "m-8", 80e6)
	r.clk.RunUntil(60)
	topo, _ := r.col.Topology()
	k := keyFor(t, topo, "m-6", "timberline")
	recent, _ := r.col.Utilization(k, 10) // only busy period
	full, _ := r.col.Utilization(k, 58)   // spans both regimes
	if math.Abs(recent.Median-80e6) > 1e4 {
		t.Fatalf("recent = %v", recent)
	}
	if full.Min > 1e4 {
		t.Fatalf("full-window min = %v, should include idle samples", full.Min)
	}
	if full.IQR() < 1e6 {
		t.Fatalf("full-window IQR = %v, should be wide", full.IQR())
	}
	g.Stop()
}

func TestCounterWraparound(t *testing.T) {
	// 90 Mbps = 11.25 MB/s; Counter32 wraps every ~382 s. Run 800 s and
	// verify no garbage samples appear around the wraps.
	r := newRig(t, 2)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	traffic.Blast(r.net, "m-1", "m-2", 90e6)
	r.clk.RunUntil(800)
	topo, _ := r.col.Topology()
	k := keyFor(t, topo, "m-1", "aspen")
	samples, err := r.col.Samples(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 300 {
		t.Fatalf("samples = %d", len(samples))
	}
	for _, s := range samples {
		if math.Abs(s.Value-90e6) > 1e4 {
			t.Fatalf("sample at t=%v is %v; wraparound mishandled", s.Time, s.Value)
		}
	}
}

func TestHostLoadPolling(t *testing.T) {
	r := newRig(t, 2)
	r.net.SetHostLoad("m-3", 0.4)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	r.clk.RunUntil(10)
	st, err := r.col.HostLoad("m-3", 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Median-0.4) > 1e-9 {
		t.Fatalf("load = %v", st)
	}
	if _, err := r.col.HostLoad("aspen", 10); err == nil {
		t.Fatal("router load query succeeded")
	}
}

func TestUnknownChannelErrors(t *testing.T) {
	r := newRig(t, 2)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	r.clk.RunUntil(5)
	if _, err := r.col.Utilization(ChannelKey{Global: 999}, 5); err == nil {
		t.Fatal("bogus channel succeeded")
	}
	if _, err := r.col.Samples(ChannelKey{Global: 999}); err == nil {
		t.Fatal("bogus samples succeeded")
	}
}

func TestPartialDomainAndFailures(t *testing.T) {
	clk := simclock.New()
	n, _ := netsim.New(clk, topology.Testbed())
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := map[graph.NodeID]string{
		"aspen": snmp.Addr("aspen"),
		"ghost": "snmp://nowhere", // unreachable agent
		"m-1":   snmp.Addr("m-1"),
		"m-2":   snmp.Addr("m-2"),
		"m-3":   snmp.Addr("m-3"),
	}
	col := New(Config{
		Client:     snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:      clk,
		Addrs:      addrs,
		PollPeriod: 1,
	})
	topo, err := col.Discover()
	if err != nil {
		t.Fatal(err)
	}
	// aspen's neighbors include timberline, discovered as a leaf.
	if !topo.Graph.HasNode("timberline") {
		t.Fatal("leaf neighbor missing")
	}
	if topo.Graph.NumLinks() != 4 { // m-1,2,3 links + aspen-timberline
		t.Fatalf("links = %d", topo.Graph.NumLinks())
	}
	if col.PollErrors() == 0 {
		t.Fatal("unreachable agent not counted")
	}
	col.PollOnce()
	clk.Advance(1)
	col.PollOnce()
	if col.Polls() != 2 {
		t.Fatalf("polls = %d", col.Polls())
	}
}

func TestEmptyDomainFails(t *testing.T) {
	clk := simclock.New()
	n, _ := netsim.New(clk, topology.Testbed())
	att := snmp.Attach(n, snmp.DefaultCommunity)
	col := New(Config{
		Client: snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:  clk,
		Addrs:  nil,
	})
	if _, err := col.Discover(); err == nil {
		t.Fatal("empty domain succeeded")
	}
}

func TestDeterministicSamples(t *testing.T) {
	run := func() []float64 {
		r := newRig(t, 2)
		if err := r.col.Start(); err != nil {
			t.Fatal(err)
		}
		traffic.OnOff(r.net, "m-6", "m-8", traffic.OnOffConfig{Rate: 50e6, MeanOn: 3, MeanOff: 2, Seed: 5})
		r.clk.RunUntil(120)
		topo, _ := r.col.Topology()
		k := keyFor(t, topo, "timberline", "whiteface")
		samples, _ := r.col.Samples(k)
		out := make([]float64, len(samples))
		for i, s := range samples {
			out[i] = s.Value
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
