package collector

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Admission control for the query server: a weighted work semaphore
// with a bounded FIFO wait queue. Cheap requests (utilization lookups)
// cost one unit; expensive ones (full topology serialization) cost
// several, so "max inflight" bounds actual work rather than request
// count. When the semaphore is full a request waits — bounded both by
// the queue depth (beyond it the server sheds with a typed retry-after
// refusal, ErrLoadShed) and by the request's own deadline (waiting past
// the caller's budget would only compute a dead answer; the gate
// returns ErrDeadlineExceeded instead).

// DefaultQueueWait bounds the queue wait of a request that carried no
// budget of its own: nothing may wait in admission forever.
const DefaultQueueWait = 5 * time.Second

// retryAfterUnit scales the shed retry-after hint by queue pressure:
// the deeper the queue at shed time, the longer the hint.
const retryAfterUnit = 25 * time.Millisecond

// opWeight prices one request op in semaphore units. Ping is free —
// liveness probes must succeed on an overloaded server, that is their
// whole point.
func opWeight(op string) int {
	switch op {
	case "ping":
		return 0
	case "topo":
		return 4
	case "samples":
		return 2
	default:
		return 1
	}
}

type gateWaiter struct {
	weight int
	ready  chan struct{} // closed by grantLocked when the slot is handed over
}

// workGate is the weighted semaphore + bounded queue.
type workGate struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	maxQueue int
	waiters  []*gateWaiter

	// shed/timedOut/admitted are diagnostics surfaced via Server.Stats.
	admitted uint64
	shed     uint64
	timedOut uint64

	// Telemetry mirrors of the counters above plus the wait-time
	// distribution and live queue depth. All nil (no-op) until
	// instrument is called; GateStats stays the compatibility surface.
	telAdmitted   *telemetry.Counter
	telShed       *telemetry.Counter
	telTimedOut   *telemetry.Counter
	telWaitMS     *telemetry.Quantile
	telQueueDepth *telemetry.Gauge
}

func newWorkGate(capacity, queueDepth int) *workGate {
	if capacity <= 0 {
		return nil
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &workGate{capacity: capacity, maxQueue: queueDepth}
}

// instrument wires the gate's decisions into a telemetry registry. A
// nil gate or nil registry leaves every instrument a no-op.
func (g *workGate) instrument(reg *telemetry.Registry) {
	if g == nil {
		return
	}
	g.telAdmitted = reg.Counter("server.admission.admitted")
	g.telShed = reg.Counter("server.admission.shed")
	g.telTimedOut = reg.Counter("server.admission.timed_out")
	g.telWaitMS = reg.Quantile("server.admission.wait_ms", 0)
	g.telQueueDepth = reg.Gauge("server.admission.queue_depth")
}

// clamp keeps a single heavyweight op admissible on a small gate.
func (g *workGate) clamp(weight int) int {
	if weight > g.capacity {
		return g.capacity
	}
	return weight
}

// acquire claims weight units, waiting in FIFO order until deadline
// (zero deadline = DefaultQueueWait). It returns a *ShedError when the
// queue is full at arrival and ErrDeadlineExceeded when the wait runs
// out the budget.
func (g *workGate) acquire(weight int, deadline time.Time) error {
	weight = g.clamp(weight)
	arrived := time.Now()
	g.mu.Lock()
	if len(g.waiters) == 0 && g.inUse+weight <= g.capacity {
		g.inUse += weight
		g.admitted++
		g.mu.Unlock()
		g.telAdmitted.Inc()
		g.telWaitMS.Observe(0)
		return nil
	}
	if len(g.waiters) >= g.maxQueue {
		depth := len(g.waiters)
		g.shed++
		g.mu.Unlock()
		g.telShed.Inc()
		return &ShedError{RetryAfter: time.Duration(depth+1) * retryAfterUnit}
	}
	w := &gateWaiter{weight: weight, ready: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.telQueueDepth.Set(float64(len(g.waiters)))
	g.mu.Unlock()

	wait := DefaultQueueWait
	if !deadline.IsZero() {
		wait = time.Until(deadline)
	}
	if wait < 0 {
		wait = 0
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-w.ready:
		g.telAdmitted.Inc()
		g.telWaitMS.Observe(float64(time.Since(arrived)) / float64(time.Millisecond))
		return nil
	case <-timer.C:
		g.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the timer and won: we own the slot.
			g.mu.Unlock()
			g.telAdmitted.Inc()
			g.telWaitMS.Observe(float64(time.Since(arrived)) / float64(time.Millisecond))
			return nil
		default:
		}
		g.removeLocked(w)
		g.timedOut++
		g.telQueueDepth.Set(float64(len(g.waiters)))
		g.mu.Unlock()
		g.telTimedOut.Inc()
		return fmt.Errorf("admission queue wait exhausted budget: %w", ErrDeadlineExceeded)
	}
}

// release returns weight units and hands freed capacity to queued
// waiters in FIFO order.
func (g *workGate) release(weight int) {
	weight = g.clamp(weight)
	g.mu.Lock()
	g.inUse -= weight
	if g.inUse < 0 { // defensive; indicates an acquire/release mismatch
		g.inUse = 0
	}
	g.grantLocked()
	g.mu.Unlock()
}

func (g *workGate) grantLocked() {
	for len(g.waiters) > 0 {
		w := g.waiters[0]
		if g.inUse+w.weight > g.capacity {
			return // strict FIFO: no overtaking past the head waiter
		}
		g.inUse += w.weight
		g.admitted++
		g.waiters = g.waiters[1:]
		g.telQueueDepth.Set(float64(len(g.waiters)))
		close(w.ready)
	}
}

func (g *workGate) removeLocked(target *gateWaiter) {
	for i, w := range g.waiters {
		if w == target {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return
		}
	}
}

// GateStats is a snapshot of the admission gate's counters.
type GateStats struct {
	// Admitted counts requests that acquired work units (immediately or
	// after queueing); Shed counts queue-full refusals; TimedOut counts
	// requests whose budget expired while queued.
	Admitted, Shed, TimedOut uint64
	// InUse and Queued describe the instantaneous state.
	InUse, Queued int
}

func (g *workGate) stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GateStats{
		Admitted: g.admitted, Shed: g.shed, TimedOut: g.timedOut,
		InUse: g.inUse, Queued: len(g.waiters),
	}
}
