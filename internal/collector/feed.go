package collector

import (
	"fmt"

	"repro/internal/stats"
)

// Replication feed: the "feed" watch kind streams a collector's full
// measurement state to stateless read replicas (internal/replica). It
// rides the multiplexed watch plane unchanged — same bounded per-
// subscription queues, dense Seq numbers, Overflowed marks, stalled-
// subscriber eviction, and terminal Final on drain — so the feed
// inherits every backpressure property subscriptions already have.
//
// Protocol: the first update on a fresh subscription carries a Full
// payload (the checkpoint-shaped snapshot of topology, sample windows,
// capacities, loads, and health). After that, each data-version bump
// produces a delta payload holding only the samples newer than the
// per-subscription cursor, plus the topology/capacity maps when a
// rediscovery moved them and the (small) health map every time. Epochs
// are the collector's DataVersion, so a replica's applied epoch is
// directly comparable to its collector's.
//
// Coherence is the subscriber's job: a Seq gap, an Overflowed mark, or
// a failover Resync mark means deltas were lost, and the only honest
// recovery is a fresh subscription (whose first update is Full again).
// A checkpoint restore replaces the collector's state wholesale; the
// state generation counter detects that and re-ships a Full payload on
// the existing subscription instead of a delta against windows that no
// longer exist.

// WatchFeed is the replication watch kind (WatchRequest.Kind): full
// snapshot first, epoch deltas after. Only sources implementing
// FeedSource accept it.
const WatchFeed = "feed"

// FeedPayload is the replication payload of one WatchFeed update.
// Shapes mirror checkpointDump so the feed and the checkpoint file stay
// one encoding family.
type FeedPayload struct {
	// Epoch is the source DataVersion the payload was collected at.
	Epoch uint64
	// Full marks a complete state snapshot: the receiver replaces
	// everything. False means a delta against the previous payload.
	Full bool
	// Now is the collector's virtual clock at collection time; replicas
	// extrapolate data ages from it between updates and across
	// partitions.
	Now float64
	// HalfLife is the collector's accuracy half-life (0 = decay
	// disabled), so replicas decay answers exactly like their feeder.
	HalfLife float64
	// WindowLen / WindowAge are the collector's sample-window bounds;
	// replicas size their windows identically.
	WindowLen int
	WindowAge float64
	// PollPeriod is the collector's poll interval in virtual seconds —
	// the expected heartbeat rate of this feed.
	PollPeriod float64
	// Term is the source's HA lease term (0 without HA). Receivers fence
	// on it: payloads with a term below the applied one are from a
	// deposed leader and must be rejected; a term advance forces a fresh
	// Full payload, exactly like a state-generation bump.
	Term uint64

	// Topo and Capacity are set on Full payloads and whenever a
	// rediscovery moved the topology; nil otherwise.
	Topo     *WireTopo
	Capacity map[ChannelKey]float64

	// Channels and Loads carry the samples newer than the subscription
	// cursor (everything retained, on Full payloads).
	Channels map[ChannelKey][]stats.Sample
	Loads    map[string][]stats.Sample

	// Health is the full per-agent health map (small; shipped on every
	// payload).
	Health map[string]AgentHealth
}

// Topology decodes the payload's topology (nil when the payload
// carries none — an unchanged-topology delta). It errors on an
// incoherent wire topology — a replica must reject such a payload and
// resync, not panic.
func (p *FeedPayload) Topology() (*Topology, error) {
	if p.Topo == nil {
		return nil, nil
	}
	return topoFromWireChecked(p.Topo)
}

// FeedCursor is one subscription's replication progress: what the
// subscriber has already been sent. It is owned by the single evaluator
// goroutine that runs the subscription.
type FeedCursor struct {
	sentFull bool
	gen      uint64 // state generation (checkpoint restores reset it)
	term     uint64 // HA lease term last shipped (promotions force Full)
	epoch    uint64
	disc     float64 // topology DiscoveredAt last shipped
	chans    map[ChannelKey]float64
	loads    map[string]float64
}

// FeedSource is a Source that can stream its state to read replicas.
// Implemented by *Collector; servers refuse WatchFeed subscriptions on
// sources that lack it.
type FeedSource interface {
	// FeedSince collects everything newer than the cursor and advances
	// it. A nil payload with nil error means nothing new. The first call
	// on a fresh cursor (and any call after the source's state was
	// replaced wholesale) returns a Full payload.
	FeedSince(cur *FeedCursor) (*FeedPayload, error)
}

// FeedSince implements FeedSource.
func (c *Collector) FeedSince(cur *FeedCursor) (*FeedPayload, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.topo == nil {
		return nil, fmt.Errorf("collector: topology not discovered yet")
	}
	epoch := c.dataVersion.Load()
	term, _, _ := c.HAStatus()
	full := !cur.sentFull || cur.gen != c.stateGen || cur.term != term
	if !full && epoch == cur.epoch {
		return nil, nil
	}
	p := &FeedPayload{
		Epoch:      epoch,
		Full:       full,
		Term:       term,
		Now:        float64(c.cfg.Clock.Now()),
		HalfLife:   c.cfg.staleHalfLife(),
		WindowLen:  c.cfg.WindowLen,
		WindowAge:  c.cfg.WindowAge,
		PollPeriod: c.cfg.PollPeriod,
		Channels:   make(map[ChannelKey][]stats.Sample),
		Loads:      make(map[string][]stats.Sample),
		Health:     make(map[string]AgentHealth, len(c.health)),
	}
	if full {
		cur.chans = make(map[ChannelKey]float64)
		cur.loads = make(map[string]float64)
		cur.disc = 0
	}
	if full || c.topo.DiscoveredAt != cur.disc {
		p.Topo = topoToWire(c.topo)
		p.Capacity = make(map[ChannelKey]float64, len(c.capacity))
		for k, v := range c.capacity {
			p.Capacity[k] = v
		}
		cur.disc = c.topo.DiscoveredAt
	}
	for k, w := range c.windows {
		since, seen := cur.chans[k]
		var samples []stats.Sample
		if full || !seen {
			samples = w.Samples()
		} else {
			samples = w.SamplesSince(since)
		}
		if len(samples) == 0 {
			continue
		}
		p.Channels[k] = samples
		cur.chans[k] = samples[len(samples)-1].Time
	}
	for id, w := range c.loads {
		key := string(id)
		since, seen := cur.loads[key]
		var samples []stats.Sample
		if full || !seen {
			samples = w.Samples()
		} else {
			samples = w.SamplesSince(since)
		}
		if len(samples) == 0 {
			continue
		}
		p.Loads[key] = samples
		cur.loads[key] = samples[len(samples)-1].Time
	}
	for id, h := range c.health {
		p.Health[string(id)] = *h
	}
	cur.sentFull = true
	cur.gen = c.stateGen
	cur.term = term
	cur.epoch = epoch
	return p, nil
}

// init warms gob's engines for feed-carrying update frames, so the
// first replica sync on a fresh process pays no engine compilation.
func init() {
	warmGob(&muxFrame{Stream: 1, Kind: mfUpdate, Update: &WatchUpdate{
		Seq: 1, Epoch: 1, Term: 1,
		Feed: &FeedPayload{
			Epoch: 1, Full: true, Now: 1, HalfLife: 1, WindowLen: 1, WindowAge: 1, PollPeriod: 1, Term: 1,
			Topo: &WireTopo{
				Nodes:        []WireNode{{ID: "n", Kind: 1, InternalBW: 1, ComputePower: 1, MemoryBytes: 1}},
				Links:        []WireLink{{A: "a", B: "b", Capacity: 1, Latency: 1, Global: 1}},
				DiscoveredAt: 1,
			},
			Capacity: map[ChannelKey]float64{{Global: 1}: 1},
			Channels: map[ChannelKey][]stats.Sample{{Global: 1}: {{Time: 1, Value: 1}}},
			Loads:    map[string][]stats.Sample{"n": {{Time: 1, Value: 1}}},
			Health:   map[string]AgentHealth{"n": {}},
		},
	}})
}
