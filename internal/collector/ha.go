package collector

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/stats"
)

// Collector-side hooks for the hot-standby pair (internal/ha): the HA
// node publishes its lease term and role here, the feed and query
// layers stamp them on everything that leaves the process, and a
// standby keeps its state warm by applying the leader's feed payloads
// directly into the collector — so a promotion starts from synced
// windows, not a cold discovery.

// haMode values for the haMode atomic.
const (
	haModeOff     = 0 // not part of a pair: HAStatus reports ok=false
	haModeStandby = 1
	haModeLeader  = 2
)

// SetHA publishes the collector's HA role and lease term. The ha.Node
// calls it on every role transition; a collector that never sees a
// SetHA call reports no HA state and all wire stamping stays zero.
func (c *Collector) SetHA(term uint64, leader bool) {
	c.haTerm.Store(term)
	if leader {
		c.haMode.Store(haModeLeader)
	} else {
		c.haMode.Store(haModeStandby)
	}
}

// HAStatus implements HAStatusSource: the current lease term and role.
// ok is false when the collector is not part of a hot-standby pair.
func (c *Collector) HAStatus() (term uint64, leader bool, ok bool) {
	mode := c.haMode.Load()
	if mode == haModeOff {
		return 0, false, false
	}
	return c.haTerm.Load(), mode == haModeLeader, true
}

// advanceVersionTo raises dataVersion to at least v (and always by at
// least one), keeping epochs monotonic when a standby mirrors its
// leader's epochs and then starts minting its own after promotion.
func advanceVersionTo(dv *atomic.Uint64, v uint64) {
	for {
		cur := dv.Load()
		next := v
		if next <= cur {
			next = cur + 1
		}
		if dv.CompareAndSwap(cur, next) {
			return
		}
	}
}

// ApplyFeed installs one replication feed payload into the collector: a
// standby's live state sync. Full payloads replace the measurement
// state wholesale (bumping the state generation, exactly like a
// checkpoint restore, so any downstream feed cursors re-snapshot);
// deltas extend the existing windows. Counter baselines are not carried
// by the feed, so a promoted standby's first poll round re-baselines
// each counter instead of fabricating a rate across the failover.
//
// Coherence (Seq gaps, term fencing, delta-before-full) is the caller's
// job — the ha.Node's sync loop enforces the same rules as a read
// replica — but a delta arriving before any full payload is rejected
// here too, since applying it would corrupt the store silently.
func (c *Collector) ApplyFeed(p *FeedPayload) error {
	if p == nil {
		return fmt.Errorf("collector: nil feed payload")
	}
	if p.Full {
		return c.applyFeedFull(p)
	}
	return c.applyFeedDelta(p)
}

func (c *Collector) applyFeedFull(p *FeedPayload) error {
	topo, err := p.Topology()
	if err != nil {
		return err
	}
	if topo == nil {
		return fmt.Errorf("collector: full feed payload without topology")
	}
	// Rebuild windows outside the lock, install at once (the same
	// discipline as RestoreCheckpoint): a corrupt payload must leave the
	// collector unchanged.
	windows := make(map[ChannelKey]*stats.Window, len(p.Channels))
	for k, samples := range p.Channels {
		w, err := c.rebuildFeedWindow(samples)
		if err != nil {
			return err
		}
		windows[k] = w
	}
	loads := make(map[graph.NodeID]*stats.Window, len(p.Loads))
	for id, samples := range p.Loads {
		w, err := c.rebuildFeedWindow(samples)
		if err != nil {
			return err
		}
		loads[graph.NodeID(id)] = w
	}
	capacity := make(map[ChannelKey]float64, len(p.Capacity))
	for k, v := range p.Capacity {
		capacity[k] = v
	}
	health := make(map[graph.NodeID]*AgentHealth, len(p.Health))
	for id, h := range p.Health {
		hc := h
		health[graph.NodeID(id)] = &hc
	}
	c.mu.Lock()
	c.topo = topo
	c.counters = make(map[ChannelKey]counterState)
	c.windows = windows
	c.capacity = capacity
	c.loads = loads
	c.health = health
	c.stateGen++
	c.mu.Unlock()
	advanceVersionTo(&c.dataVersion, p.Epoch)
	c.notifyVersion()
	c.tel.Counter("collector.feed.applied.full").Inc()
	return nil
}

func (c *Collector) applyFeedDelta(p *FeedPayload) error {
	topo, err := p.Topology()
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.topo == nil {
		c.mu.Unlock()
		return fmt.Errorf("collector: feed delta before any full payload")
	}
	if topo != nil {
		c.topo = topo
		capacity := make(map[ChannelKey]float64, len(p.Capacity))
		for k, v := range p.Capacity {
			capacity[k] = v
		}
		c.capacity = capacity
	}
	for k, samples := range p.Channels {
		w := c.windows[k]
		if w == nil {
			w = stats.NewWindow(c.cfg.WindowLen, c.cfg.WindowAge)
			c.windows[k] = w
		}
		if err := appendFeedSamples(w, samples); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	for id, samples := range p.Loads {
		nid := graph.NodeID(id)
		w := c.loads[nid]
		if w == nil {
			w = stats.NewWindow(c.cfg.WindowLen, c.cfg.WindowAge)
			c.loads[nid] = w
		}
		if err := appendFeedSamples(w, samples); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	if p.Health != nil {
		health := make(map[graph.NodeID]*AgentHealth, len(p.Health))
		for id, h := range p.Health {
			hc := h
			health[graph.NodeID(id)] = &hc
		}
		c.health = health
	}
	c.mu.Unlock()
	advanceVersionTo(&c.dataVersion, p.Epoch)
	c.notifyVersion()
	c.tel.Counter("collector.feed.applied.delta").Inc()
	return nil
}

// rebuildFeedWindow reconstructs a sample window from shipped samples,
// sized by the collector's own config (the pair is configured
// identically). Out-of-order or non-finite samples fail the apply.
func (c *Collector) rebuildFeedWindow(samples []stats.Sample) (*stats.Window, error) {
	w := stats.NewWindow(c.cfg.WindowLen, c.cfg.WindowAge)
	if err := appendFeedSamples(w, samples); err != nil {
		return nil, err
	}
	return w, nil
}

func appendFeedSamples(w *stats.Window, samples []stats.Sample) error {
	for _, s := range samples {
		if math.IsNaN(s.Time) || math.IsInf(s.Time, 0) ||
			math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			return fmt.Errorf("collector: non-finite sample in feed payload")
		}
		if err := w.Add(s.Time, s.Value); err != nil {
			return fmt.Errorf("collector: corrupt feed payload: %w", err)
		}
	}
	return nil
}
