package faults

import (
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topology"
)

func newRig(t *testing.T) (*simclock.Clock, *snmp.Client, *Injector) {
	t.Helper()
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	inj := New(att.Registry, clk, 1)
	return clk, snmp.NewClient(inj, snmp.DefaultCommunity), inj
}

func TestBlackholeWindow(t *testing.T) {
	clk, c, inj := newRig(t)
	addr := snmp.Addr("aspen")
	inj.Blackhole(addr, 5, 10)

	get := func() error {
		_, err := c.Get(addr, snmp.OIDSysName)
		return err
	}
	if err := get(); err != nil {
		t.Fatalf("before window: %v", err)
	}
	clk.Advance(5)
	if err := get(); !errors.Is(err, ErrInjected) {
		t.Fatalf("inside window: %v", err)
	}
	clk.Advance(4)
	if err := get(); !errors.Is(err, ErrInjected) {
		t.Fatalf("end of window: %v", err)
	}
	clk.Advance(1) // t=10: the window is half-open, [5, 10)
	if err := get(); err != nil {
		t.Fatalf("after window: %v", err)
	}
	ctr := inj.CountersFor(addr)
	if ctr.Blackholed != 2 || ctr.Delivered != 2 || ctr.Attempts != 4 {
		t.Fatalf("counters = %+v", ctr)
	}
	// Other agents are untouched.
	if _, err := c.Get(snmp.Addr("m-1"), snmp.OIDSysName); err != nil {
		t.Fatal(err)
	}
}

func TestFlapAndRestore(t *testing.T) {
	clk, c, inj := newRig(t)
	addr := snmp.Addr("m-2")
	inj.FlapAt(addr, 2, 3) // down in [2, 5)
	inj.Blackhole(addr, 20, 0)

	clk.Advance(3)
	if _, err := c.Get(addr, snmp.OIDSysName); !errors.Is(err, ErrInjected) {
		t.Fatal("flap window not applied")
	}
	clk.Advance(3)
	if _, err := c.Get(addr, snmp.OIDSysName); err != nil {
		t.Fatalf("between windows: %v", err)
	}
	clk.Advance(100)
	if _, err := c.Get(addr, snmp.OIDSysName); !errors.Is(err, ErrInjected) {
		t.Fatal("open-ended blackhole not applied")
	}
	inj.Restore(addr)
	if _, err := c.Get(addr, snmp.OIDSysName); err != nil {
		t.Fatalf("after restore: %v", err)
	}
}

func TestProbabilisticLossIsSeededAndDeterministic(t *testing.T) {
	run := func() []bool {
		_, c, inj := newRig(t)
		addr := snmp.Addr("m-3")
		inj.Loss(addr, 0.4)
		out := make([]bool, 50)
		for i := range out {
			_, err := c.Get(addr, snmp.OIDSysName)
			out[i] = err == nil
		}
		return out
	}
	a, b := run(), run()
	lost := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at request %d", i)
		}
		if !a[i] {
			lost++
		}
	}
	if lost < 10 || lost > 35 {
		t.Fatalf("lost %d/50 at p=0.4", lost)
	}
}

func TestLatencyBeyondBudgetTimesOut(t *testing.T) {
	_, c, inj := newRig(t)
	addr := snmp.Addr("m-4")
	inj.Latency(addr, 0.1) // under the 0.5 s budget: invisible
	if _, err := c.Get(addr, snmp.OIDSysName); err != nil {
		t.Fatalf("sub-budget latency failed: %v", err)
	}
	inj.Latency(addr, 0.5)
	if _, err := c.Get(addr, snmp.OIDSysName); !errors.Is(err, ErrInjected) {
		t.Fatal("late response not failed")
	}
	inj.SetTimeout(1.0)
	if _, err := c.Get(addr, snmp.OIDSysName); err != nil {
		t.Fatalf("after raising budget: %v", err)
	}
	if ctr := inj.CountersFor(addr); ctr.TimedOut != 1 {
		t.Fatalf("counters = %+v", ctr)
	}
}

func TestCorruptionIsDeterministicAndDetected(t *testing.T) {
	// A flipped byte may land in payload (undetectable without checksums,
	// as in real SNMPv1) or in framing/IDs (rejected by the client). The
	// injector guarantees every response is touched and that the outcome
	// pattern replays exactly under the same seed.
	run := func() []bool {
		_, c, inj := newRig(t)
		addr := snmp.Addr("m-5")
		inj.Corrupt(addr, 1)
		out := make([]bool, 20)
		for i := range out {
			_, err := c.Get(addr, snmp.OIDSysName)
			out[i] = err != nil
		}
		if ctr := inj.CountersFor(addr); ctr.Corrupted != 20 {
			t.Fatalf("counters = %+v", ctr)
		}
		return out
	}
	a, b := run(), run()
	failures := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corruption outcome diverged at request %d", i)
		}
		if a[i] {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("no corrupted response was rejected")
	}
}

func TestComputeSlowdownAndOutage(t *testing.T) {
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	fc := NewCompute(n)
	host := graph.NodeID("m-1")

	// Nominal: power 1, so 10 work = 10 s.
	if d := fc.Duration(host, 10); d != 10 {
		t.Fatalf("nominal duration = %v", d)
	}
	// 2x slowdown over [4, 8): 4 s at full speed + 4 s at half speed
	// (2 units of work) + 4 s for the remaining 4 units = 12 s.
	fc.Slowdown(host, 2, 4, 8)
	if d := fc.Duration(host, 10); d != 12 {
		t.Fatalf("slowed duration = %v", d)
	}
	// Outage [10, 15): by t=10 only 8 of the 10 units are done (4 full
	// speed, 2 at half, 2 more full); the last 2 stall until t=15 and
	// finish at t=17.
	fc.Outage(host, 10, 15)
	if d := fc.Duration(host, 10); d != 17 {
		t.Fatalf("duration across outage = %v", d)
	}
	if d := fc.Duration(host, 11); d != 18 {
		t.Fatalf("duration across outage = %v", d)
	}

	// Run fires the completion at the computed time.
	var doneAt simclock.Time = -1
	if ev := fc.Run(host, 11, func(now simclock.Time) { doneAt = now }); ev == nil {
		t.Fatal("Run returned nil for finishable work")
	}
	clk.Run(0)
	if doneAt != 18 {
		t.Fatalf("completion at t=%v", doneAt)
	}

	// Unbounded outage: never completes.
	fc.Outage(host, 20, 0)
	if d := fc.Duration(host, 1e9); !math.IsInf(d, 1) {
		t.Fatalf("duration under unbounded outage = %v", d)
	}
	if ev := fc.Run(host, 1e9, func(simclock.Time) {}); ev != nil {
		t.Fatal("Run scheduled unfinishable work")
	}
	fc.Restore(host)
	if d := fc.Duration(host, 10); d != 10 {
		t.Fatalf("after restore = %v", d)
	}
}
