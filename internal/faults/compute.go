package faults

import (
	"math"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
)

// Compute wraps the netsim compute model with per-host fault windows: a
// slowdown multiplies compute durations while it is in effect, and an
// outage (infinite slowdown) stalls work entirely until the host
// returns. Work submitted during an outage queues and resumes when the
// window closes, mirroring a crashed-and-rebooted node that picks its
// task back up.
type Compute struct {
	net *netsim.Network

	mu   sync.Mutex
	slow map[graph.NodeID][]slowdown
}

type slowdown struct {
	factor   float64 // duration multiplier; +Inf = outage
	from, to float64
}

// NewCompute wraps a simulated network's compute model.
func NewCompute(n *netsim.Network) *Compute {
	return &Compute{net: n, slow: make(map[graph.NodeID][]slowdown)}
}

// Slowdown multiplies id's compute durations by factor (> 1) during the
// virtual-time interval [from, to). A non-positive `to` means forever.
func (c *Compute) Slowdown(id graph.NodeID, factor, from, to float64) {
	if to <= 0 {
		to = math.Inf(1)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.slow[id] = append(c.slow[id], slowdown{factor: factor, from: from, to: to})
	sort.SliceStable(c.slow[id], func(i, j int) bool { return c.slow[id][i].from < c.slow[id][j].from })
}

// Outage takes host id down for compute in [from, to): no progress at
// all while the window is open.
func (c *Compute) Outage(id graph.NodeID, from, to float64) {
	c.Slowdown(id, math.Inf(1), from, to)
}

// Restore clears id's fault windows.
func (c *Compute) Restore(id graph.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.slow, id)
}

// factorAt returns the active duration multiplier at time t and the
// next window boundary after t (Inf if none).
func (c *Compute) factorAt(id graph.NodeID, t float64) (factor, next float64) {
	factor, next = 1, math.Inf(1)
	for _, s := range c.slow[id] {
		if s.from > t {
			next = math.Min(next, s.from)
			continue
		}
		if t < s.to {
			// Overlapping windows compound multiplicatively.
			factor *= s.factor
			next = math.Min(next, s.to)
		}
	}
	return factor, next
}

// Duration returns how long `work` units submitted now would take on
// id, integrating the fault schedule piecewise over virtual time. It
// returns +Inf when an unbounded outage never lets the work finish.
func (c *Compute) Duration(id graph.NodeID, work float64) float64 {
	nominal := c.net.ComputeDuration(id, work)
	now := float64(c.net.Clock().Now())
	c.mu.Lock()
	defer c.mu.Unlock()
	t, remaining := now, nominal // remaining nominal compute-seconds
	for remaining > 0 {
		factor, next := c.factorAt(id, t)
		if math.IsInf(next, 1) {
			if math.IsInf(factor, 1) {
				return math.Inf(1)
			}
			return t - now + remaining*factor
		}
		if !math.IsInf(factor, 1) {
			if progress := (next - t) / factor; progress >= remaining {
				return t - now + remaining*factor
			} else {
				remaining -= progress
			}
		}
		t = next
	}
	return t - now
}

// Run schedules `work` units on id under the fault schedule and invokes
// done at completion. It returns nil (and never calls done) when the
// schedule keeps the host down forever.
func (c *Compute) Run(id graph.NodeID, work float64, done func(now simclock.Time)) *simclock.Event {
	d := c.Duration(id, work)
	if math.IsInf(d, 1) {
		return nil
	}
	return c.net.Clock().After(d, "faulty-compute:"+string(id), done)
}
