// Package faults is the deterministic fault-injection layer for the
// simulated deployment. It wraps an snmp.Transport with per-agent,
// virtual-time failure schedules — blackholes (drop everything),
// probabilistic loss, added response latency, response corruption, and
// flap-at-time-T windows — and wraps the netsim compute model with
// per-host slowdown and outage windows (compute.go).
//
// Every probabilistic fault draws from one seeded RNG and every
// scheduled fault consults the simulation clock, so a robustness
// scenario replays bit-for-bit under a fixed seed: the substrate the
// collection pipeline's health machine, backoff, and accuracy-decay
// behaviour are tested on.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/simclock"
	"repro/internal/snmp"
)

// ErrInjected is the sentinel wrapped by every injected failure, so
// tests and callers can distinguish injected faults from real ones.
var ErrInjected = errors.New("faults: injected failure")

// DefaultTimeout is the virtual-time budget an injected latency must
// stay under for a request to be answered at all (see Latency).
const DefaultTimeout = 0.5

// Counters snapshots what the injector did to one agent's traffic.
type Counters struct {
	Attempts   uint64 // requests presented to the injector
	Delivered  uint64 // requests that reached the agent and returned
	Blackholed uint64 // dropped by a blackhole window
	Lost       uint64 // dropped by probabilistic loss
	TimedOut   uint64 // answered too late (injected latency >= timeout)
	Corrupted  uint64 // delivered with a flipped response byte
}

type window struct{ from, to float64 }

func (w window) contains(t float64) bool { return t >= w.from && t < w.to }

// agentFaults is the live schedule for one agent address.
type agentFaults struct {
	windows []window // blackhole intervals
	loss    float64  // per-request drop probability
	latency float64  // added response latency (virtual seconds)
	corrupt float64  // per-request corruption probability
}

// Injector wraps a Transport with a per-agent fault schedule. It is
// itself a snmp.Transport, so it slots between the collector's client
// and whatever real transport carries the requests.
type Injector struct {
	inner   snmp.Transport
	clock   *simclock.Clock
	timeout float64

	mu       sync.Mutex
	rng      *rand.Rand
	agents   map[string]*agentFaults
	counters map[string]*Counters
}

// New wraps inner with an empty fault schedule. The clock positions
// scheduled faults in virtual time; seed drives probabilistic loss and
// corruption deterministically.
func New(inner snmp.Transport, clock *simclock.Clock, seed int64) *Injector {
	return &Injector{
		inner:    inner,
		clock:    clock,
		timeout:  DefaultTimeout,
		rng:      rand.New(rand.NewSource(seed)),
		agents:   make(map[string]*agentFaults),
		counters: make(map[string]*Counters),
	}
}

// SetTimeout changes the virtual-time response budget that injected
// latency is compared against (default DefaultTimeout). A request whose
// injected latency meets or exceeds it times out instead of answering.
func (i *Injector) SetTimeout(d float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.timeout = d
}

func (i *Injector) faultsFor(addr string) *agentFaults {
	f := i.agents[addr]
	if f == nil {
		f = &agentFaults{}
		i.agents[addr] = f
	}
	return f
}

func (i *Injector) countersFor(addr string) *Counters {
	c := i.counters[addr]
	if c == nil {
		c = &Counters{}
		i.counters[addr] = c
	}
	return c
}

// Blackhole drops every request to addr in the virtual-time interval
// [from, to). A non-positive `to` means forever (until Restore).
func (i *Injector) Blackhole(addr string, from, to float64) {
	if to <= 0 {
		to = math.Inf(1)
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	f := i.faultsFor(addr)
	f.windows = append(f.windows, window{from: from, to: to})
}

// FlapAt takes addr down at virtual time `at` for `downFor` seconds —
// the router-reboot scenario.
func (i *Injector) FlapAt(addr string, at, downFor float64) {
	i.Blackhole(addr, at, at+downFor)
}

// Loss drops each request to addr independently with probability p.
func (i *Injector) Loss(addr string, p float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.faultsFor(addr).loss = p
}

// Latency adds d virtual seconds to every response from addr. A
// synchronous poll cannot observe sub-timeout latency, so the only
// visible effect is binary: latency at or above the injector timeout
// turns the request into a timeout failure.
func (i *Injector) Latency(addr string, d float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.faultsFor(addr).latency = d
}

// Corrupt flips one byte of each response from addr independently with
// probability p, so the decode/validation path upstream must reject it.
func (i *Injector) Corrupt(addr string, p float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.faultsFor(addr).corrupt = p
}

// Restore clears addr's entire fault schedule.
func (i *Injector) Restore(addr string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.agents, addr)
}

// CountersFor returns a snapshot of the injector's effect on addr.
func (i *Injector) CountersFor(addr string) Counters {
	i.mu.Lock()
	defer i.mu.Unlock()
	return *i.countersFor(addr)
}

// RoundTrip implements snmp.Transport: it applies addr's schedule at
// the current virtual time, then delegates survivors to the wrapped
// transport.
func (i *Injector) RoundTrip(addr string, req []byte) ([]byte, error) {
	now := float64(i.clock.Now())
	i.mu.Lock()
	ctr := i.countersFor(addr)
	ctr.Attempts++
	corrupt := false
	if f := i.agents[addr]; f != nil {
		for _, w := range f.windows {
			if w.contains(now) {
				ctr.Blackholed++
				i.mu.Unlock()
				return nil, fmt.Errorf("faults: %s blackholed at t=%.3f: %w", addr, now, ErrInjected)
			}
		}
		if f.loss > 0 && i.rng.Float64() < f.loss {
			ctr.Lost++
			i.mu.Unlock()
			return nil, fmt.Errorf("faults: %s lost request at t=%.3f: %w", addr, now, ErrInjected)
		}
		if f.latency > 0 && f.latency >= i.timeout {
			ctr.TimedOut++
			i.mu.Unlock()
			return nil, fmt.Errorf("faults: %s response %.3fs late (budget %.3fs): %w",
				addr, f.latency, i.timeout, ErrInjected)
		}
		corrupt = f.corrupt > 0 && i.rng.Float64() < f.corrupt
	}
	i.mu.Unlock()

	resp, err := i.inner.RoundTrip(addr, req)
	if err != nil {
		return nil, err
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if corrupt && len(resp) > 0 {
		out := append([]byte(nil), resp...)
		out[i.rng.Intn(len(out))] ^= 0xFF
		ctr.Corrupted++
		return out, nil
	}
	ctr.Delivered++
	return resp, nil
}
