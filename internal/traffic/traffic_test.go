package traffic

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/topology"
)

func testbedSim(t *testing.T) (*simclock.Clock, *netsim.Network) {
	t.Helper()
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	return clk, n
}

func TestCBROccupiesRoute(t *testing.T) {
	clk, n := testbedSim(t)
	g := CBR(n, "m-6", "m-8", 60e6)
	clk.Advance(10)
	n.Sync()
	// The m-6 -> m-8 route crosses timberline->whiteface.
	p := n.Routes().Route("m-6", "m-8")
	for _, ch := range p.Channels() {
		if rate := n.ChannelRate(ch, ""); math.Abs(rate-60e6) > 1 {
			t.Fatalf("channel %v rate = %v", ch, rate)
		}
		if bits := n.ChannelBits(ch); math.Abs(bits-600e6) > 1 {
			t.Fatalf("channel %v bits = %v", ch, bits)
		}
	}
	if !strings.Contains(g.Describe(), "CBR m-6->m-8") {
		t.Fatalf("describe = %q", g.Describe())
	}
	g.Stop()
	if len(n.ActiveFlows()) != 0 {
		t.Fatal("flow survives Stop")
	}
	g.Stop() // idempotent
}

func TestElastic(t *testing.T) {
	clk, n := testbedSim(t)
	g := Elastic(n, "m-1", "m-2")
	clk.Advance(1)
	n.Sync()
	f := n.ActiveFlows()[0]
	if math.Abs(f.Rate()-100e6) > 1 {
		t.Fatalf("elastic rate = %v", f.Rate())
	}
	g.Stop()
}

func TestOnOffAlternates(t *testing.T) {
	clk, n := testbedSim(t)
	g := OnOff(n, "m-6", "m-8", OnOffConfig{Rate: 50e6, MeanOn: 1, MeanOff: 1, Seed: 42})
	clk.Advance(100)
	oo := g.(*onOff)
	if oo.Bursts() < 20 || oo.Bursts() > 80 {
		t.Fatalf("bursts = %d over 100s with ~0.5 duty", oo.Bursts())
	}
	// Mean utilization should be near the 50% duty cycle.
	n.Sync()
	p := n.Routes().Route("m-6", "m-8")
	bits := n.ChannelBits(p.Channels()[1])
	frac := bits / (50e6 * 100)
	if frac < 0.25 || frac > 0.75 {
		t.Fatalf("duty fraction = %v", frac)
	}
	g.Stop()
	clk.Advance(50)
	if len(n.ActiveFlows()) != 0 {
		t.Fatal("on-off still sending after Stop")
	}
}

func TestOnOffDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		clk, n := testbedSim(t)
		OnOff(n, "m-6", "m-8", OnOffConfig{Rate: 50e6, MeanOn: 1, MeanOff: 1, Seed: 7})
		clk.Advance(50)
		n.Sync()
		p := n.Routes().Route("m-6", "m-8")
		return n.ChannelBits(p.Channels()[0])
	}
	if run() != run() {
		t.Fatal("on-off traffic not deterministic for equal seeds")
	}
}

func TestOnOffBadConfigPanics(t *testing.T) {
	_, n := testbedSim(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OnOff(n, "m-1", "m-2", OnOffConfig{})
}

func TestPoissonTransfers(t *testing.T) {
	clk, n := testbedSim(t)
	g := PoissonTransfers(n, "m-3", "m-7", PoissonTransfersConfig{
		MeanInterarrival: 0.5,
		MinBytes:         1e4,
		MaxBytes:         1e6,
		Seed:             3,
	})
	clk.Advance(60)
	po := g.(*poisson)
	if po.Launched() < 60 {
		t.Fatalf("launched = %d over 60s at 2/s", po.Launched())
	}
	if err := n.CheckConservation(1e-6); err != nil {
		t.Fatal(err)
	}
	g.Stop()
	clk.Advance(60)
	if len(n.ActiveFlows()) != 0 {
		t.Fatal("transfers still arriving after Stop")
	}
}

func TestPoissonSizesBounded(t *testing.T) {
	g := &poisson{cfg: PoissonTransfersConfig{MinBytes: 100, MaxBytes: 1e5, Alpha: 1.2}}
	g.rng = rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		s := g.size()
		if s < 100 || s > 1e5 {
			t.Fatalf("size %v out of bounds", s)
		}
	}
}

func TestScenario(t *testing.T) {
	clk, n := testbedSim(t)
	s := NewScenario("interfering")
	s.Add(CBR(n, "m-6", "m-8", 90e6))
	s.Add(CBR(n, "m-8", "m-6", 90e6))
	if !strings.Contains(s.Describe(), "interfering:") {
		t.Fatalf("describe = %q", s.Describe())
	}
	clk.Advance(1)
	if len(n.ActiveFlows()) != 2 {
		t.Fatalf("flows = %d", len(n.ActiveFlows()))
	}
	s.StopAll()
	if len(n.ActiveFlows()) != 0 {
		t.Fatal("StopAll left flows")
	}
	empty := NewScenario("none")
	if !strings.Contains(empty.Describe(), "no traffic") {
		t.Fatalf("describe = %q", empty.Describe())
	}
}

func TestOwnerTagging(t *testing.T) {
	clk, n := testbedSim(t)
	CBR(n, "m-6", "m-8", 30e6)
	n.StartFlow(netsim.FlowSpec{Src: "m-6", Dst: "m-8", Owner: "app", RateCap: 20e6})
	clk.Advance(1)
	var ch = n.Routes().Route("m-6", "m-8").Channels()[1]
	if got := n.ChannelRate(ch, Owner); math.Abs(got-20e6) > 1 {
		t.Fatalf("rate excluding traffic = %v", got)
	}
	if got := n.ChannelRate(ch, "app"); math.Abs(got-30e6) > 1 {
		t.Fatalf("rate excluding app = %v", got)
	}
	_ = graph.Channel{}
}
