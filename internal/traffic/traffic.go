// Package traffic generates the synthetic competing load of §8.2/§8.3:
// "a synthetic program that generates communication traffic between nodes
// m-6 and m-8". Generators are deterministic (seeded PRNG) processes on
// the simulation clock that start and stop flows in the netsim.
package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
)

// Owner is the flow-owner tag attached to generated traffic, so that
// measurement consumers can distinguish it from application flows.
const Owner = "traffic"

// Generator is a running traffic source that can be stopped.
type Generator interface {
	// Stop halts the generator and removes any live flows it owns.
	Stop()
	// Describe returns a human-readable summary for experiment logs.
	Describe() string
}

// CBR starts a constant-bit-rate flow from src to dst at rate bits/s,
// running until stopped. This is the paper's interfering load: a steady
// stream that occupies a known share of every link on its route.
func CBR(n *netsim.Network, src, dst graph.NodeID, rate float64) Generator {
	f := n.StartFlow(netsim.FlowSpec{Src: src, Dst: dst, RateCap: rate, Owner: Owner})
	return &cbr{n: n, flow: f, src: src, dst: dst, rate: rate}
}

type cbr struct {
	n        *netsim.Network
	flow     *netsim.Flow
	src, dst graph.NodeID
	rate     float64
	stopped  bool
}

func (c *cbr) Stop() {
	if !c.stopped {
		c.n.StopFlow(c.flow.ID)
		c.stopped = true
	}
}

func (c *cbr) Describe() string {
	return fmt.Sprintf("CBR %s->%s @ %.1f Mbps", c.src, c.dst, c.rate/1e6)
}

// Blast starts a non-responsive constant-rate flow (a UDP blaster): it
// claims its full rate before elastic traffic shares the remainder. This
// is the shape of the paper's §8.2 interfering load — heavy synthetic
// traffic that does not back off.
func Blast(n *netsim.Network, src, dst graph.NodeID, rate float64) Generator {
	f := n.StartFlow(netsim.FlowSpec{Src: src, Dst: dst, RateCap: rate, Priority: true, Owner: Owner})
	return &cbr{n: n, flow: f, src: src, dst: dst, rate: rate}
}

// Elastic starts a greedy persistent flow that soaks up whatever max-min
// gives it (a bulk transfer that never ends).
func Elastic(n *netsim.Network, src, dst graph.NodeID) Generator {
	f := n.StartFlow(netsim.FlowSpec{Src: src, Dst: dst, Owner: Owner})
	return &cbr{n: n, flow: f, src: src, dst: dst, rate: math.Inf(1)}
}

// OnOffConfig parameterizes an on-off (bursty) source.
type OnOffConfig struct {
	Rate    float64 // sending rate while on, bits/s
	MeanOn  float64 // mean on-period, seconds (exponential)
	MeanOff float64 // mean off-period, seconds (exponential)
	Seed    int64
}

// OnOff starts a bursty source alternating exponentially-distributed on
// and off periods — the "bursty traffic" the paper cites as the reason
// quartiles beat variance (§4.4).
func OnOff(n *netsim.Network, src, dst graph.NodeID, cfg OnOffConfig) Generator {
	if cfg.Rate <= 0 || cfg.MeanOn <= 0 || cfg.MeanOff <= 0 {
		panic("traffic: OnOff requires positive rate and periods")
	}
	g := &onOff{
		n: n, src: src, dst: dst, cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	g.scheduleOn(n.Clock().Now())
	return g
}

type onOff struct {
	n        *netsim.Network
	src, dst graph.NodeID
	cfg      OnOffConfig
	rng      *rand.Rand
	flow     *netsim.Flow
	stopped  bool
	bursts   int
}

func (g *onOff) exp(mean float64) float64 { return g.rng.ExpFloat64() * mean }

func (g *onOff) scheduleOn(now simclock.Time) {
	g.n.Clock().Schedule(now+simclock.Time(g.exp(g.cfg.MeanOff)), "onoff-on", func(t simclock.Time) {
		if g.stopped {
			return
		}
		g.bursts++
		g.flow = g.n.StartFlow(netsim.FlowSpec{Src: g.src, Dst: g.dst, RateCap: g.cfg.Rate, Owner: Owner})
		g.n.Clock().After(g.exp(g.cfg.MeanOn), "onoff-off", func(simclock.Time) {
			if g.flow != nil {
				g.n.StopFlow(g.flow.ID)
				g.flow = nil
			}
			if !g.stopped {
				g.scheduleOn(g.n.Clock().Now())
			}
		})
	})
}

func (g *onOff) Stop() {
	g.stopped = true
	if g.flow != nil {
		g.n.StopFlow(g.flow.ID)
		g.flow = nil
	}
}

func (g *onOff) Describe() string {
	return fmt.Sprintf("OnOff %s->%s @ %.1f Mbps (on %.1fs / off %.1fs)",
		g.src, g.dst, g.cfg.Rate/1e6, g.cfg.MeanOn, g.cfg.MeanOff)
}

// Bursts returns how many on-periods have started (diagnostic).
func (g *onOff) Bursts() int { return g.bursts }

// PoissonTransfersConfig parameterizes a Poisson arrival process of
// finite transfers with bounded-Pareto-ish sizes.
type PoissonTransfersConfig struct {
	MeanInterarrival float64 // seconds
	MinBytes         float64
	MaxBytes         float64
	Alpha            float64 // Pareto shape; 1.2 is heavy-tailed
	Seed             int64
}

// PoissonTransfers launches finite elastic transfers at Poisson times
// with heavy-tailed sizes: workstation-cluster background load.
func PoissonTransfers(n *netsim.Network, src, dst graph.NodeID, cfg PoissonTransfersConfig) Generator {
	if cfg.MeanInterarrival <= 0 || cfg.MinBytes <= 0 || cfg.MaxBytes < cfg.MinBytes {
		panic("traffic: bad PoissonTransfers config")
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1.2
	}
	g := &poisson{n: n, src: src, dst: dst, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.scheduleNext(n.Clock().Now())
	return g
}

type poisson struct {
	n        *netsim.Network
	src, dst graph.NodeID
	cfg      PoissonTransfersConfig
	rng      *rand.Rand
	live     map[netsim.FlowID]bool
	stopped  bool
	launched int
}

func (g *poisson) size() float64 {
	// Bounded Pareto via inverse transform.
	a := g.cfg.Alpha
	l, h := g.cfg.MinBytes, g.cfg.MaxBytes
	u := g.rng.Float64()
	x := math.Pow(math.Pow(l, -a)-u*(math.Pow(l, -a)-math.Pow(h, -a)), -1/a)
	return x
}

func (g *poisson) scheduleNext(now simclock.Time) {
	g.n.Clock().Schedule(now+simclock.Time(g.rng.ExpFloat64()*g.cfg.MeanInterarrival), "poisson-xfer", func(t simclock.Time) {
		if g.stopped {
			return
		}
		g.launched++
		if g.live == nil {
			g.live = make(map[netsim.FlowID]bool)
		}
		var id netsim.FlowID
		f := g.n.StartFlow(netsim.FlowSpec{
			Src: g.src, Dst: g.dst, Bytes: g.size(), Owner: Owner,
			OnComplete: func(simclock.Time, *netsim.Flow) { delete(g.live, id) },
		})
		id = f.ID
		g.live[id] = true
		g.scheduleNext(t)
	})
}

func (g *poisson) Stop() {
	g.stopped = true
	for id := range g.live {
		g.n.StopFlow(id)
	}
	g.live = nil
}

func (g *poisson) Describe() string {
	return fmt.Sprintf("Poisson %s->%s (1/%.1fs, %.0f-%.0f bytes)",
		g.src, g.dst, g.cfg.MeanInterarrival, g.cfg.MinBytes, g.cfg.MaxBytes)
}

// Launched returns how many transfers have started (diagnostic).
func (g *poisson) Launched() int { return g.launched }

// HostLoadWalkConfig parameterizes a random-walk CPU load generator.
type HostLoadWalkConfig struct {
	Mean   float64 // long-run load level in [0,1)
	Jitter float64 // maximum step per period
	Period float64 // seconds between steps
	Seed   int64
}

// HostLoadWalk drives a host's background CPU load as a mean-reverting
// random walk — the compute-side counterpart of the bandwidth
// generators, feeding the hrProcessorLoad gauge the collector polls.
func HostLoadWalk(n *netsim.Network, host graph.NodeID, cfg HostLoadWalkConfig) Generator {
	if cfg.Period <= 0 || cfg.Mean < 0 || cfg.Mean >= 1 {
		panic("traffic: bad HostLoadWalk config")
	}
	g := &loadWalk{n: n, host: host, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), level: cfg.Mean}
	n.SetHostLoad(host, cfg.Mean)
	g.ticker = n.Clock().NewTicker(n.Clock().Now()+simclock.Time(cfg.Period), cfg.Period,
		"load-walk:"+string(host), g.step)
	return g
}

type loadWalk struct {
	n      *netsim.Network
	host   graph.NodeID
	cfg    HostLoadWalkConfig
	rng    *rand.Rand
	level  float64
	ticker *simclock.Ticker
}

func (g *loadWalk) step(simclock.Time) {
	// Mean-reverting: drift half-way back plus a bounded random step.
	g.level += (g.cfg.Mean-g.level)*0.5 + (g.rng.Float64()*2-1)*g.cfg.Jitter
	if g.level < 0 {
		g.level = 0
	}
	if g.level > 0.95 {
		g.level = 0.95
	}
	g.n.SetHostLoad(g.host, g.level)
}

func (g *loadWalk) Stop() {
	g.ticker.Stop()
	g.n.SetHostLoad(g.host, 0)
}

func (g *loadWalk) Describe() string {
	return fmt.Sprintf("LoadWalk %s mean=%.2f", g.host, g.cfg.Mean)
}

// Scenario is a named bundle of generators, used by the experiment
// harness to describe the traffic patterns of Tables 2 and 3.
type Scenario struct {
	Name string
	gens []Generator
}

// NewScenario creates an empty scenario.
func NewScenario(name string) *Scenario { return &Scenario{Name: name} }

// Add registers a generator with the scenario.
func (s *Scenario) Add(g Generator) *Scenario {
	s.gens = append(s.gens, g)
	return s
}

// StopAll halts every generator in the scenario.
func (s *Scenario) StopAll() {
	for _, g := range s.gens {
		g.Stop()
	}
}

// Describe lists the generators.
func (s *Scenario) Describe() string {
	out := s.Name + ":"
	if len(s.gens) == 0 {
		return out + " (no traffic)"
	}
	for _, g := range s.gens {
		out += " [" + g.Describe() + "]"
	}
	return out
}
