// Package packetsim is a small packet-level network simulator used to
// validate the fluid-flow model in internal/netsim — the load-bearing
// substitution of this reproduction (DESIGN.md): the claim that a
// packet-switched network with fair queueing shares bottleneck
// bandwidth max-min fairly, so a fluid model that computes max-min
// allocations directly reproduces the same rates.
//
// The model: store-and-forward links, each running a two-level
// scheduler — strict priority for non-responsive sources (the netsim
// Priority class), then deficit round robin (DRR) with per-flow queues
// and weight-proportional quanta for everyone else. Sources are greedy
// (always backlogged, elastic), CBR (paced injection), or finite
// transfers. Tests in this package drive identical scenarios through
// packetsim and through maxmin/netsim and assert the rates agree to
// within a few percent.
package packetsim

import (
	"fmt"

	"repro/internal/simclock"
)

// Link is one transmission resource with per-flow queues.
type Link struct {
	Name     string
	Capacity float64 // bits per second

	queues   map[*Flow][]*packet
	deficit  map[*Flow]float64
	rr       []*Flow // round-robin order (flows that ever enqueued)
	rrPos    int
	fresh    bool // rrPos just moved onto a new queue (grant due)
	busy     bool
	quantumB float64 // base quantum in bytes
}

// NewLink creates a link. quantumBytes is the DRR base quantum (per unit
// of flow weight); it should be at least one packet.
func NewLink(name string, capacity, quantumBytes float64) *Link {
	if capacity <= 0 || quantumBytes <= 0 {
		panic(fmt.Sprintf("packetsim: bad link %s cap=%v quantum=%v", name, capacity, quantumBytes))
	}
	return &Link{
		Name:     name,
		Capacity: capacity,
		queues:   make(map[*Flow][]*packet),
		deficit:  make(map[*Flow]float64),
		quantumB: quantumBytes,
	}
}

// SourceKind selects a flow's traffic source model.
type SourceKind int

const (
	// Greedy is always backlogged: an elastic bulk transfer.
	Greedy SourceKind = iota
	// CBR injects packets at a fixed rate.
	CBR
	// Finite injects a fixed number of bytes as fast as the first hop
	// accepts them, then stops.
	Finite
)

// Flow is one end-to-end packet stream.
type Flow struct {
	ID     int
	Path   []*Link
	Kind   SourceKind
	Weight float64 // DRR share weight (default 1)

	// Rate is the injection rate for CBR flows (bits/second).
	Rate float64

	// Priority marks the flow for the strict-priority class, like
	// netsim's non-responsive blasters. Only meaningful with CBR.
	Priority bool

	// TotalBytes is the Finite transfer size.
	TotalBytes float64

	// PacketBytes is the packet size (default 1500).
	PacketBytes float64

	delivered float64 // bytes that completed the last hop
	injected  float64
	window    int // greedy in-flight limit at the first hop
}

// Delivered returns bytes delivered end to end.
func (f *Flow) Delivered() float64 { return f.delivered }

type packet struct {
	flow  *Flow
	bytes float64
	hop   int
}

// Network runs flows over links on a simulation clock.
type Network struct {
	clock *simclock.Clock
	flows []*Flow
	links map[*Link]bool
}

// New creates a packet network on the given clock.
func New(clock *simclock.Clock) *Network {
	return &Network{clock: clock, links: make(map[*Link]bool)}
}

// AddFlow registers and starts a flow.
func (n *Network) AddFlow(f *Flow) *Flow {
	if len(f.Path) == 0 {
		panic("packetsim: flow without a path")
	}
	if f.Weight <= 0 {
		f.Weight = 1
	}
	if f.PacketBytes <= 0 {
		f.PacketBytes = 1500
	}
	if f.window == 0 {
		f.window = 8
	}
	if f.Priority && f.Kind != CBR {
		panic("packetsim: priority requires a CBR source")
	}
	f.ID = len(n.flows)
	n.flows = append(n.flows, f)
	for _, l := range f.Path {
		n.links[l] = true
	}
	switch f.Kind {
	case Greedy, Finite:
		n.refillGreedy(f)
	case CBR:
		n.scheduleCBR(f)
	}
	return f
}

// refillGreedy tops the first-hop queue up to the window.
func (n *Network) refillGreedy(f *Flow) {
	first := f.Path[0]
	for len(first.queues[f]) < f.window {
		if f.Kind == Finite && f.injected >= f.TotalBytes {
			return
		}
		size := f.PacketBytes
		if f.Kind == Finite && f.injected+size > f.TotalBytes {
			size = f.TotalBytes - f.injected
		}
		f.injected += size
		n.enqueue(first, &packet{flow: f, bytes: size, hop: 0})
	}
}

func (n *Network) scheduleCBR(f *Flow) {
	interval := f.PacketBytes * 8 / f.Rate
	n.clock.NewTicker(n.clock.Now()+simclock.Time(interval), interval,
		fmt.Sprintf("cbr-flow-%d", f.ID), func(simclock.Time) {
			f.injected += f.PacketBytes
			n.enqueue(f.Path[0], &packet{flow: f, bytes: f.PacketBytes, hop: 0})
		})
}

func (n *Network) enqueue(l *Link, p *packet) {
	if _, seen := l.queues[p.flow]; !seen {
		l.rr = append(l.rr, p.flow)
		l.deficit[p.flow] = 0
	}
	l.queues[p.flow] = append(l.queues[p.flow], p)
	if !l.busy {
		n.transmitNext(l)
	}
}

// pick selects the next packet under strict-priority-then-DRR.
func (l *Link) pick() *packet {
	// Strict priority class first, FIFO among priority flows.
	for _, f := range l.rr {
		if f.Priority && len(l.queues[f]) > 0 {
			return l.queues[f][0]
		}
	}
	// DRR over non-priority flows. A queue's turn starts when the
	// round-robin pointer moves onto it (one quantum granted, scaled by
	// weight) and lasts while its deficit affords packets; the deficit
	// resets when the queue drains, per the classic algorithm.
	active := 0
	for _, f := range l.rr {
		if !f.Priority && len(l.queues[f]) > 0 {
			active++
		}
	}
	if active == 0 {
		return nil
	}
	const maxScans = 1 << 20 // tiny quantum×weight would otherwise spin
	for scans := 0; scans < maxScans; scans++ {
		f := l.rr[l.rrPos%len(l.rr)]
		q := l.queues[f]
		if f.Priority || len(q) == 0 {
			if len(q) == 0 {
				l.deficit[f] = 0
			}
			l.rrPos++
			l.fresh = true
			continue
		}
		if l.fresh {
			l.deficit[f] += l.quantumB * f.Weight
			l.fresh = false
		}
		if l.deficit[f] >= q[0].bytes {
			return q[0] // stay on this queue: its turn continues
		}
		l.rrPos++
		l.fresh = true
	}
	panic(fmt.Sprintf("packetsim: link %s scheduler starved (quantum %v too small?)", l.Name, l.quantumB))
}

func (n *Network) transmitNext(l *Link) {
	p := l.pick()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	if !p.flow.Priority {
		l.deficit[p.flow] -= p.bytes
	}
	// Dequeue.
	q := l.queues[p.flow]
	l.queues[p.flow] = q[1:]
	dur := p.bytes * 8 / l.Capacity
	n.clock.After(dur, "pkt-tx:"+l.Name, func(simclock.Time) {
		n.packetDone(l, p)
	})
}

func (n *Network) packetDone(l *Link, p *packet) {
	p.hop++
	if p.hop < len(p.flow.Path) {
		n.enqueue(p.flow.Path[p.hop], p)
	} else {
		p.flow.delivered += p.bytes
		if p.flow.Kind == Greedy || p.flow.Kind == Finite {
			n.refillGreedy(p.flow)
		}
	}
	n.transmitNext(l)
}

// MeasureRates runs the simulation for `warmup` seconds, then measures
// each flow's delivery rate (bits/s) over the next `window` seconds.
func (n *Network) MeasureRates(warmup, window float64) []float64 {
	n.clock.Advance(warmup)
	start := make([]float64, len(n.flows))
	for i, f := range n.flows {
		start[i] = f.delivered
	}
	n.clock.Advance(window)
	out := make([]float64, len(n.flows))
	for i, f := range n.flows {
		out[i] = (f.delivered - start[i]) * 8 / window
	}
	return out
}
