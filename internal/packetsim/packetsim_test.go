package packetsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/maxmin"
	"repro/internal/simclock"
)

// rel returns |a-b| / max(b, 1).
func rel(a, b float64) float64 {
	d := math.Abs(a - b)
	if b > 1 {
		return d / b
	}
	return d
}

func TestEqualShareAtPacketGranularity(t *testing.T) {
	clk := simclock.New()
	n := New(clk)
	link := NewLink("L", 30e6, 1500)
	for i := 0; i < 3; i++ {
		n.AddFlow(&Flow{Path: []*Link{link}, Kind: Greedy})
	}
	rates := n.MeasureRates(2, 10)
	for i, r := range rates {
		if rel(r, 10e6) > 0.02 {
			t.Fatalf("flow %d rate = %v, want ~10e6", i, r)
		}
	}
}

func TestWeightedDRRMatchesPaperExample(t *testing.T) {
	// The §4.2 example at packet level: weights 3 : 4.5 : 9 over a
	// 5.5 Mbps link deliver 1 / 1.5 / 3 Mbps.
	clk := simclock.New()
	n := New(clk)
	link := NewLink("L", 5.5e6, 1500)
	for _, w := range []float64{3, 4.5, 9} {
		n.AddFlow(&Flow{Path: []*Link{link}, Kind: Greedy, Weight: w})
	}
	rates := n.MeasureRates(5, 30)
	want := []float64{1e6, 1.5e6, 3e6}
	for i := range want {
		if rel(rates[i], want[i]) > 0.03 {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
}

func TestCBRKeepsItsRateUnderDRR(t *testing.T) {
	clk := simclock.New()
	n := New(clk)
	link := NewLink("L", 10e6, 1500)
	cbr := n.AddFlow(&Flow{Path: []*Link{link}, Kind: CBR, Rate: 2e6})
	greedy := n.AddFlow(&Flow{Path: []*Link{link}, Kind: Greedy})
	rates := n.MeasureRates(2, 10)
	if rel(rates[cbr.ID], 2e6) > 0.05 {
		t.Fatalf("cbr rate = %v", rates[cbr.ID])
	}
	if rel(rates[greedy.ID], 8e6) > 0.05 {
		t.Fatalf("greedy rate = %v", rates[greedy.ID])
	}
}

func TestPriorityBlasterCrushesElastic(t *testing.T) {
	// netsim semantics at packet level: a priority CBR at 90% takes its
	// rate; the greedy flow gets the leftover.
	clk := simclock.New()
	n := New(clk)
	link := NewLink("L", 100e6, 1500)
	blast := n.AddFlow(&Flow{Path: []*Link{link}, Kind: CBR, Rate: 90e6, Priority: true})
	greedy := n.AddFlow(&Flow{Path: []*Link{link}, Kind: Greedy})
	rates := n.MeasureRates(2, 10)
	if rel(rates[blast.ID], 90e6) > 0.02 {
		t.Fatalf("blast rate = %v", rates[blast.ID])
	}
	if rel(rates[greedy.ID], 10e6) > 0.1 {
		t.Fatalf("greedy leftover = %v, want ~10e6", rates[greedy.ID])
	}
}

func TestSeriesBottleneck(t *testing.T) {
	// Flow A crosses fast then slow link; its rate is the slow link's.
	clk := simclock.New()
	n := New(clk)
	fast := NewLink("fast", 100e6, 1500)
	slow := NewLink("slow", 10e6, 1500)
	a := n.AddFlow(&Flow{Path: []*Link{fast, slow}, Kind: Greedy})
	rates := n.MeasureRates(2, 10)
	if rel(rates[a.ID], 10e6) > 0.03 {
		t.Fatalf("rate = %v", rates[a.ID])
	}
}

func TestClassicBottleneckTopologyAtPacketLevel(t *testing.T) {
	// The maxmin classic: A over links L1+L2, B over L1, C over L2.
	// L1 = 10 Mbps, L2 = 20 Mbps: A=5, B=5, C=15.
	clk := simclock.New()
	n := New(clk)
	l1 := NewLink("L1", 10e6, 1500)
	l2 := NewLink("L2", 20e6, 1500)
	a := n.AddFlow(&Flow{Path: []*Link{l1, l2}, Kind: Greedy})
	b := n.AddFlow(&Flow{Path: []*Link{l1}, Kind: Greedy})
	c := n.AddFlow(&Flow{Path: []*Link{l2}, Kind: Greedy})
	rates := n.MeasureRates(5, 20)
	want := map[int]float64{a.ID: 5e6, b.ID: 5e6, c.ID: 15e6}
	for id, w := range want {
		if rel(rates[id], w) > 0.06 {
			t.Fatalf("flow %d rate = %v, want %v (all: %v)", id, rates[id], w, rates)
		}
	}
}

// The central validation: random single-bottleneck mixes agree with the
// max-min solver that the fluid simulator uses.
func TestPacketLevelMatchesMaxMinProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 12; trial++ {
		clk := simclock.New()
		n := New(clk)
		capacity := 20e6 + rng.Float64()*80e6
		link := NewLink("L", capacity, 1500)
		nFlows := 2 + rng.Intn(4)
		var demands []maxmin.Demand
		var flows []*Flow
		for i := 0; i < nFlows; i++ {
			w := 1 + rng.Float64()*3
			f := &Flow{Path: []*Link{link}, Kind: Greedy, Weight: w}
			n.AddFlow(f)
			flows = append(flows, f)
			demands = append(demands, maxmin.Demand{
				Resources: []maxmin.ResourceID{0}, Weight: w,
			})
		}
		expected := (&maxmin.Problem{Capacity: []float64{capacity}, Demands: demands}).Solve()
		rates := n.MeasureRates(5, 20)
		for i := range flows {
			if rel(rates[i], expected[i]) > 0.05 {
				t.Fatalf("trial %d flow %d: packet %v vs maxmin %v",
					trial, i, rates[i], expected[i])
			}
		}
	}
}

func TestFiniteTransferDeliversExactly(t *testing.T) {
	clk := simclock.New()
	n := New(clk)
	link := NewLink("L", 10e6, 1500)
	f := n.AddFlow(&Flow{Path: []*Link{link}, Kind: Finite, TotalBytes: 1e6})
	clk.Advance(2)
	if f.Delivered() != 1e6 {
		t.Fatalf("delivered = %v", f.Delivered())
	}
	// ~0.8s at 10 Mbps; nothing more arrives afterwards.
	clk.Advance(5)
	if f.Delivered() != 1e6 {
		t.Fatalf("delivered grew to %v", f.Delivered())
	}
}

func TestBadInputsPanic(t *testing.T) {
	clk := simclock.New()
	n := New(clk)
	for name, fn := range map[string]func(){
		"bad link":    func() { NewLink("x", 0, 1500) },
		"no path":     func() { n.AddFlow(&Flow{Kind: Greedy}) },
		"greedy prio": func() { n.AddFlow(&Flow{Path: []*Link{NewLink("l", 1e6, 1500)}, Kind: Greedy, Priority: true}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkPacketSimSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clk := simclock.New()
		n := New(clk)
		link := NewLink("L", 100e6, 1500)
		for j := 0; j < 4; j++ {
			n.AddFlow(&Flow{Path: []*Link{link}, Kind: Greedy})
		}
		clk.Advance(1) // ~8300 packets
	}
}
