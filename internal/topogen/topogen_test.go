package topogen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/topofile"
)

func specs() []Spec {
	return []Spec{
		{Kind: KindFatTree, N: 100, Seed: 1, Regions: 3},
		{Kind: KindFatTree, N: 1000, Seed: 1, Regions: 3},
		{Kind: KindHier, N: 100, Seed: 7, Regions: 3},
		{Kind: KindHier, N: 1000, Seed: 7, Regions: 4},
		{Kind: KindISP, N: 100, Seed: 42, Regions: 3},
		{Kind: KindISP, N: 1000, Seed: 42, Regions: 5},
	}
}

func TestGenerateConnectedAndValid(t *testing.T) {
	for _, s := range specs() {
		tp, err := Generate(s)
		if err != nil {
			t.Fatalf("Generate(%+v): %v", s, err)
		}
		n := len(tp.Graph.Nodes())
		if n < s.N {
			t.Errorf("%s n=%d: only %d nodes generated", s.Kind, s.N, n)
		}
		if !tp.Graph.Connected() {
			t.Errorf("%s n=%d seed=%d: disconnected", s.Kind, s.N, s.Seed)
		}
		// Every node carries a region; every region is non-empty.
		byRegion := map[string]int{}
		for _, id := range tp.Graph.Nodes() {
			r := tp.RegionOf(id)
			if r == "" {
				t.Fatalf("%s: node %s has no region", s.Kind, id)
			}
			byRegion[r]++
		}
		for _, r := range tp.Regions {
			if byRegion[r] == 0 {
				t.Errorf("%s n=%d: region %s empty", s.Kind, s.N, r)
			}
		}
		// Every region owns at least one host, so per-region collectors
		// always have something to answer about.
		for _, r := range tp.Regions {
			if len(tp.Hosts(r)) == 0 {
				t.Errorf("%s n=%d: region %s has no hosts", s.Kind, s.N, r)
			}
		}
	}
}

// TestGenerateDeterministic: identical specs must yield byte-identical
// topofile renderings — the property federated daemons rely on to agree
// about node names and region ownership without talking to each other.
func TestGenerateDeterministic(t *testing.T) {
	for _, s := range specs() {
		a, err := Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		fa, fb := topofile.Format(a.Graph), topofile.Format(b.Graph)
		if fa != fb {
			t.Errorf("%s n=%d seed=%d: non-deterministic output", s.Kind, s.N, s.Seed)
		}
		for id, r := range a.Region {
			if b.Region[id] != r {
				t.Errorf("%s: region of %s differs across runs (%s vs %s)", s.Kind, id, r, b.Region[id])
			}
		}
	}
}

// Seeds must matter for the randomized generators.
func TestSeedChangesISP(t *testing.T) {
	a, _ := Generate(Spec{Kind: KindISP, N: 200, Seed: 1, Regions: 3})
	b, _ := Generate(Spec{Kind: KindISP, N: 200, Seed: 2, Regions: 3})
	if topofile.Format(a.Graph) == topofile.Format(b.Graph) {
		t.Fatal("isp: different seeds produced identical graphs")
	}
}

// Generated topologies must round-trip through the topofile format.
func TestTopofileRoundTrip(t *testing.T) {
	for _, s := range specs() {
		tp, err := Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		out := topofile.Format(tp.Graph)
		back, err := topofile.ParseString(out)
		if err != nil {
			t.Fatalf("%s: re-parse: %v", s.Kind, err)
		}
		if topofile.Format(back) != out {
			t.Errorf("%s n=%d: topofile round-trip not stable", s.Kind, s.N)
		}
	}
}

func TestFatTreeShape(t *testing.T) {
	tp := FatTree(4, 2)
	// k=4: 16 hosts, 4 pods × 4 switches, 4 core.
	hosts := tp.Graph.ComputeNodes()
	if len(hosts) != 16 {
		t.Fatalf("k=4 fat-tree: %d hosts, want 16", len(hosts))
	}
	if n := len(tp.Graph.Nodes()); n != 16+16+4 {
		t.Fatalf("k=4 fat-tree: %d nodes, want 36", n)
	}
	// Any host pair must be routable.
	rt, err := tp.Graph.Routes()
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Route(hosts[0], hosts[len(hosts)-1])
	if p == nil {
		t.Fatalf("no route %s -> %s", hosts[0], hosts[len(hosts)-1])
	}
	// Cross-pod paths traverse edge-agg-core-agg-edge: 6 hops.
	if p.Hops() != 6 {
		t.Fatalf("cross-pod hops = %d, want 6 (%s)", p.Hops(), p)
	}
}

func TestScalesTo5k(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, kind := range []string{KindFatTree, KindHier, KindISP} {
		tp, err := Generate(Spec{Kind: kind, N: 5000, Seed: 3, Regions: 3})
		if err != nil {
			t.Fatalf("%s at 5k: %v", kind, err)
		}
		if n := len(tp.Graph.Nodes()); n < 5000 {
			t.Fatalf("%s at 5k: only %d nodes", kind, n)
		}
		// Lazy routes make this cheap: one connectivity sweep plus one
		// Dijkstra for the single queried pair.
		rt, err := tp.Graph.Routes()
		if err != nil {
			t.Fatal(err)
		}
		hosts := tp.Graph.ComputeNodes()
		if rt.Route(hosts[0], hosts[len(hosts)-1]) == nil {
			t.Fatalf("%s at 5k: no route between first and last host", kind)
		}
	}
}

var _ = graph.New // keep import if assertions above change
