// Package topogen generates parametric network topologies for scale
// studies and federation experiments: data-center fat-trees, the
// hierarchical interior-core + edge-router growth pattern, and random
// ISP-like graphs built by preferential attachment with capacity tiers.
//
// Every generator is seeded and deterministic: the same (kind, n, seed,
// regions) tuple produces byte-identical graphs — node insertion order,
// link IDs, capacities, everything — on every run and in every process.
// That property is load-bearing: federated collector daemons regenerate
// the topology independently from the same spec and must agree exactly
// on node names and region ownership.
//
// Each topology carries a region partition. Regions are topologically
// contiguous blocks (pods of a fat-tree, index ranges of edge routers,
// attachment-order ranges of ISP routers), so intra-region links
// dominate and the cross-region cut a federation summarizes stays
// small. Hosts always live in the region of the router they attach to.
package topogen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/topology"
)

// Capacity tiers (bits/s). Access links are testbed-grade Ethernet;
// aggregation and core tiers scale up the way real fabrics do.
const (
	AccessBps = 100 * topology.Mbps  // host ↔ first-hop router
	EdgeBps   = 1000 * topology.Mbps // edge ↔ aggregation / intra-pod
	CoreBps   = 10000 * topology.Mbps
	// TierLatency grows with distance from the access layer.
	accessLat = topology.PerHopLatency
	coreLat   = 2 * topology.PerHopLatency
)

// Kinds accepted by Generate.
const (
	KindFatTree = "fattree"
	KindHier    = "hier"
	KindISP     = "isp"
)

// Spec names one generated topology.
type Spec struct {
	// Kind selects the generator: "fattree", "hier", or "isp".
	Kind string
	// N is the approximate total node budget (hosts + routers). The
	// generator picks its structural parameters to land at or just
	// above N.
	N int
	// Seed drives every random choice. Fat-trees are fully structural
	// and ignore it.
	Seed int64
	// Regions is the number of contiguous regions to partition the
	// topology into (0 = 3, the canonical federation size).
	Regions int
}

// Topology is a generated graph plus its region partition.
type Topology struct {
	Graph *graph.Graph
	// Region maps every node to its owning region ("r0", "r1", ...).
	Region map[graph.NodeID]string
	// Regions is the sorted list of distinct region names.
	Regions []string
}

// RegionOf returns the owning region of id ("" for unknown nodes).
func (t *Topology) RegionOf(id graph.NodeID) string { return t.Region[id] }

// Members returns the sorted node IDs owned by region.
func (t *Topology) Members(region string) []graph.NodeID {
	var out []graph.NodeID
	for id, r := range t.Region {
		if r == region {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Hosts returns the sorted compute-node IDs owned by region ("" = all).
func (t *Topology) Hosts(region string) []graph.NodeID {
	var out []graph.NodeID
	for _, id := range t.Graph.ComputeNodes() {
		if region == "" || t.Region[id] == region {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Generate builds the topology named by spec.
func Generate(spec Spec) (*Topology, error) {
	if spec.N <= 0 {
		return nil, fmt.Errorf("topogen: node budget must be positive (got %d)", spec.N)
	}
	regions := spec.Regions
	if regions <= 0 {
		regions = 3
	}
	var t *Topology
	switch spec.Kind {
	case KindFatTree:
		// Smallest even k whose fat-tree reaches the budget:
		// k³/4 hosts + 5k²/4 switches.
		k := 2
		for k*k*k/4+5*k*k/4 < spec.N {
			k += 2
		}
		t = FatTree(k, regions)
	case KindHier:
		interior := spec.N / 50
		if interior < 3 {
			interior = 3
		}
		edge := spec.N / 10
		if edge < regions {
			edge = regions
		}
		hosts := spec.N - interior - edge
		if hosts < edge {
			hosts = edge // at least one host per edge router
		}
		t = Hier(interior, edge, hosts, regions, spec.Seed)
	case KindISP:
		routers := spec.N / 8
		if routers < regions+2 {
			routers = regions + 2
		}
		hosts := spec.N - routers
		if hosts < regions {
			hosts = regions
		}
		t = ISP(routers, hosts, regions, spec.Seed)
	default:
		return nil, fmt.Errorf("topogen: unknown kind %q (want fattree, hier, or isp)", spec.Kind)
	}
	if err := t.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("topogen: generated graph invalid: %w", err)
	}
	if !t.Graph.Connected() {
		return nil, fmt.Errorf("topogen: generated graph disconnected (kind=%s n=%d seed=%d)",
			spec.Kind, spec.N, spec.Seed)
	}
	return t, nil
}

// blockRegion assigns index i of n items to one of r contiguous blocks.
func blockRegion(i, n, r int) string {
	if n <= 0 {
		return "r0"
	}
	b := i * r / n
	if b >= r {
		b = r - 1
	}
	return fmt.Sprintf("r%d", b)
}

func newTopology(g *graph.Graph, regions int) *Topology {
	t := &Topology{Graph: g, Region: make(map[graph.NodeID]string)}
	for i := 0; i < regions; i++ {
		t.Regions = append(t.Regions, fmt.Sprintf("r%d", i))
	}
	return t
}

// FatTree builds the classic k-ary fat-tree (k even, k ≥ 2): k pods of
// k/2 edge and k/2 aggregation switches, (k/2)² core switches, and k/2
// hosts per edge switch — k³/4 hosts total. Pods are the natural
// regions; pod p folds into contiguous block p·regions/k, and core
// switches spread across regions in index blocks. Purely structural:
// no randomness.
func FatTree(k, regions int) *Topology {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topogen: fat-tree arity must be even and >= 2 (got %d)", k))
	}
	g := graph.New()
	t := newTopology(g, regions)
	half := k / 2
	// Core switches first (insertion order: core, then pod by pod).
	for c := 0; c < half*half; c++ {
		id := graph.NodeID(fmt.Sprintf("c%d", c))
		g.AddRouter(id, 0)
		t.Region[id] = blockRegion(c, half*half, regions)
	}
	for p := 0; p < k; p++ {
		reg := blockRegion(p, k, regions)
		for a := 0; a < half; a++ {
			id := graph.NodeID(fmt.Sprintf("p%d-a%d", p, a))
			g.AddRouter(id, 0)
			t.Region[id] = reg
			// Aggregation switch a uplinks to core group a.
			for c := 0; c < half; c++ {
				g.AddLink(id, graph.NodeID(fmt.Sprintf("c%d", a*half+c)), CoreBps, coreLat)
			}
		}
		for e := 0; e < half; e++ {
			eid := graph.NodeID(fmt.Sprintf("p%d-e%d", p, e))
			g.AddRouter(eid, 0)
			t.Region[eid] = reg
			for a := 0; a < half; a++ {
				g.AddLink(eid, graph.NodeID(fmt.Sprintf("p%d-a%d", p, a)), EdgeBps, accessLat)
			}
			for h := 0; h < half; h++ {
				hid := graph.NodeID(fmt.Sprintf("p%d-e%d-h%d", p, e, h))
				n := g.AddHost(hid, topology.HostPower)
				n.MemoryBytes = topology.HostMemory
				t.Region[hid] = reg
				g.AddLink(hid, eid, AccessBps, accessLat)
			}
		}
	}
	return t
}

// Hier builds the hierarchical interior-core + edge-router growth
// pattern: `interior` core routers joined in a ring plus seeded random
// chords (so the core is 2-connected and diameter stays low), `edge`
// edge routers each homed to two distinct interior routers, and `hosts`
// hosts spread round-robin across the edge routers. Regions are
// contiguous blocks of interior and edge indices; hosts inherit their
// edge router's region.
func Hier(interior, edge, hosts, regions int, seed int64) *Topology {
	if interior < 1 || edge < 1 {
		panic(fmt.Sprintf("topogen: hier needs interior >= 1 and edge >= 1 (got %d, %d)", interior, edge))
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	t := newTopology(g, regions)
	for i := 0; i < interior; i++ {
		id := graph.NodeID(fmt.Sprintf("core%d", i))
		g.AddRouter(id, 0)
		t.Region[id] = blockRegion(i, interior, regions)
	}
	// Ring keeps the core connected; chords (one per ~4 routers) cut
	// the diameter.
	for i := 0; i < interior; i++ {
		if interior > 1 && !(interior == 2 && i == 1) {
			g.AddLink(graph.NodeID(fmt.Sprintf("core%d", i)),
				graph.NodeID(fmt.Sprintf("core%d", (i+1)%interior)), CoreBps, coreLat)
		}
	}
	for c := 0; c < interior/4; c++ {
		a := rng.Intn(interior)
		b := rng.Intn(interior)
		if a == b || a == (b+1)%interior || b == (a+1)%interior {
			continue // skip self/duplicate-ring chords; count stays seeded
		}
		ida, idb := graph.NodeID(fmt.Sprintf("core%d", a)), graph.NodeID(fmt.Sprintf("core%d", b))
		if linkBetween(g, ida, idb) {
			continue
		}
		g.AddLink(ida, idb, CoreBps, coreLat)
	}
	for e := 0; e < edge; e++ {
		id := graph.NodeID(fmt.Sprintf("edge%d", e))
		g.AddRouter(id, 0)
		t.Region[id] = blockRegion(e, edge, regions)
		// Dual-homed: one deterministic home (keeps every edge router in
		// its own region's share of the core when possible), one random.
		h1 := e % interior
		g.AddLink(id, graph.NodeID(fmt.Sprintf("core%d", h1)), EdgeBps, accessLat)
		if interior > 1 {
			h2 := rng.Intn(interior - 1)
			if h2 >= h1 {
				h2++
			}
			g.AddLink(id, graph.NodeID(fmt.Sprintf("core%d", h2)), EdgeBps, accessLat)
		}
	}
	for h := 0; h < hosts; h++ {
		e := h % edge
		id := graph.NodeID(fmt.Sprintf("edge%d-h%d", e, h/edge))
		n := g.AddHost(id, topology.HostPower)
		n.MemoryBytes = topology.HostMemory
		t.Region[id] = t.Region[graph.NodeID(fmt.Sprintf("edge%d", e))]
		g.AddLink(id, graph.NodeID(fmt.Sprintf("edge%d", e)), AccessBps, accessLat)
	}
	return t
}

// ISP builds a random ISP-like graph by preferential attachment: a
// small full mesh of tier-1 routers, then routers added one at a time,
// each linking to two distinct existing routers chosen with probability
// proportional to degree. Capacity tiers follow attachment order — the
// first third of routers interconnect at core rates, the middle third
// at aggregation rates, the tail at access rates — mirroring how real
// provider graphs grow hubs early. Hosts attach to the latest (lowest-
// degree) routers. Regions are contiguous attachment-order blocks.
func ISP(routers, hosts, regions int, seed int64) *Topology {
	if routers < 3 {
		panic(fmt.Sprintf("topogen: isp needs >= 3 routers (got %d)", routers))
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	t := newTopology(g, regions)
	rid := func(i int) graph.NodeID { return graph.NodeID(fmt.Sprintf("isp%d", i)) }
	tierBps := func(i int) float64 {
		switch {
		case i < routers/3:
			return CoreBps
		case i < 2*routers/3:
			return EdgeBps
		default:
			return AccessBps * 6 // ~622 Mbps, OC-12-ish
		}
	}
	// degree-weighted endpoint list: endpoint i appears deg(i) times.
	var ends []int
	seedMesh := 3
	for i := 0; i < seedMesh; i++ {
		g.AddRouter(rid(i), 0)
		t.Region[rid(i)] = blockRegion(i, routers, regions)
	}
	for i := 0; i < seedMesh; i++ {
		for j := i + 1; j < seedMesh; j++ {
			g.AddLink(rid(i), rid(j), CoreBps, coreLat)
			ends = append(ends, i, j)
		}
	}
	for i := seedMesh; i < routers; i++ {
		g.AddRouter(rid(i), 0)
		t.Region[rid(i)] = blockRegion(i, routers, regions)
		// Two distinct degree-preferential targets.
		a := ends[rng.Intn(len(ends))]
		b := a
		for tries := 0; b == a && tries < 8; tries++ {
			b = ends[rng.Intn(len(ends))]
		}
		bps := tierBps(i)
		g.AddLink(rid(i), rid(a), bps, coreLat)
		ends = append(ends, i, a)
		if b != a {
			g.AddLink(rid(i), rid(b), bps, coreLat)
			ends = append(ends, i, b)
		}
	}
	// Hosts spread region-by-region over each region's later-attached
	// (lower-degree) routers, which keeps early hub routers mostly
	// host-free the way real POPs are while giving every region hosts.
	perRegion := make(map[string][]int)
	for i := 0; i < routers; i++ {
		r := t.Region[rid(i)]
		perRegion[r] = append(perRegion[r], i)
	}
	access := make(map[string][]int)
	for _, r := range t.Regions {
		rs := perRegion[r]
		if len(rs) == 0 {
			continue
		}
		access[r] = rs[len(rs)/2:] // tail half: the later, leafier routers
	}
	counter := make(map[int]int)
	for h := 0; h < hosts; h++ {
		reg := t.Regions[h%len(t.Regions)]
		as := access[reg]
		if len(as) == 0 {
			continue
		}
		r := as[(h/len(t.Regions))%len(as)]
		id := graph.NodeID(fmt.Sprintf("isp%d-h%d", r, counter[r]))
		counter[r]++
		n := g.AddHost(id, topology.HostPower)
		n.MemoryBytes = topology.HostMemory
		t.Region[id] = reg
		g.AddLink(id, rid(r), AccessBps, accessLat)
	}
	return t
}

// linkBetween reports whether a and b are already directly linked.
func linkBetween(g *graph.Graph, a, b graph.NodeID) bool {
	for _, l := range g.LinksAt(a) {
		if o, ok := l.Other(a); ok && o == b {
			return true
		}
	}
	return false
}
