// Package fx is a miniature rendering of the Fx runtime system the paper
// builds on (§7.1): iterative task/data-parallel programs whose node
// assignment can change at iteration boundaries.
//
// A Program is a sequence of Steps per iteration; each Step has a
// per-node compute phase and a collective communication phase realized
// as flows in the network simulator. The Runtime executes the program on
// a node set, invoking an optional Adapter at every migration point (the
// start of each outer iteration, where the paper's model guarantees no
// live distributed data). Migration re-maps the active nodes, costs the
// configured overhead, and is counted in the Report.
//
// The paper's observation that the adaptive build pays for being
// "compiled for 8 nodes and running on 5" is modeled by the
// CompiledNodes/OverheadAlpha factor.
package fx

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
)

// Step is one compute+communicate phase of an iteration.
type Step struct {
	Name string

	// WorkPerNode returns the compute work units each active node
	// executes, given the active node count. Nil means no compute.
	WorkPerNode func(p int) float64

	// Comm builds the communication flows for the step given the active
	// node mapping. Nil means no communication.
	Comm func(nodes []graph.NodeID) []netsim.FlowSpec
}

// Program is an iterative data-parallel application.
type Program struct {
	Name       string
	Iterations int
	Steps      []Step
}

// Adapter decides, at a migration point, whether to re-map the program.
// It returns the new node set (nil to keep the current one) and the
// decision overhead in seconds (the cost of querying Remos and running
// clustering, which the paper measures as part of adaptation overhead).
type Adapter interface {
	MaybeMigrate(now simclock.Time, iteration int, current []graph.NodeID) (newNodes []graph.NodeID, decisionCost float64)
}

// MigrationEvent records one re-mapping.
type MigrationEvent struct {
	Iteration int
	At        simclock.Time
	From, To  []graph.NodeID
}

// Report summarizes one program execution.
type Report struct {
	Program        string
	Nodes          []graph.NodeID // final mapping
	Started, Ended simclock.Time
	IterationTimes []float64
	Migrations     []MigrationEvent
	AdaptSeconds   float64 // total decision + migration overhead
}

// Elapsed returns the wall-clock (virtual) execution time.
func (r *Report) Elapsed() float64 { return float64(r.Ended - r.Started) }

// Runtime executes Programs on the simulated network.
type Runtime struct {
	Net *netsim.Network

	// Owner tags the program's flows (default "app").
	Owner string

	// Adapter, when set, is consulted at every iteration start.
	Adapter Adapter

	// MigrationCost is the virtual seconds charged per executed
	// migration (state redistribution bookkeeping; the experiments use
	// replicated data, so this is small but not free).
	MigrationCost float64

	// MigrationDataBytes, when positive, makes migration pay for moving
	// state over the network instead of (in addition to) the flat
	// MigrationCost: each node leaving the mapping ships its partition
	// (MigrationDataBytes / P bytes) to a node joining it, as real
	// flows that contend with everything else. This models the paper's
	// §7.1 caveat that copying live distributed data "can be expensive
	// in terms of memory usage and copying time".
	MigrationDataBytes float64

	// CompiledNodes, when larger than the active node count, inflates
	// compute work by OverheadAlpha*(compiled/active - 1): the paper's
	// cost of invoking the program on all potentially-used nodes.
	CompiledNodes int

	// OverheadAlpha calibrates that inflation (default 0.55, fitted to
	// the paper's 862s-vs-650s fixed-adaptive-vs-plain Airshed gap).
	OverheadAlpha float64
}

func (r *Runtime) owner() string {
	if r.Owner == "" {
		return "app"
	}
	return r.Owner
}

func (r *Runtime) overheadFactor(active int) float64 {
	if r.CompiledNodes <= active {
		return 1
	}
	alpha := r.OverheadAlpha
	if alpha == 0 {
		alpha = 0.55
	}
	return 1 + alpha*(float64(r.CompiledNodes)/float64(active)-1)
}

// Run starts the program on the given nodes and calls done with the
// Report when the last iteration finishes. Execution is event-driven;
// the caller advances the simulation clock.
func (r *Runtime) Run(p *Program, nodes []graph.NodeID, done func(*Report)) {
	if p.Iterations <= 0 {
		panic(fmt.Sprintf("fx: program %q has no iterations", p.Name))
	}
	if len(nodes) == 0 {
		panic(fmt.Sprintf("fx: program %q started with no nodes", p.Name))
	}
	for _, n := range nodes {
		nd := r.Net.Graph().Node(n)
		if nd == nil || nd.Kind != graph.Compute {
			panic(fmt.Sprintf("fx: %q is not a compute node", n))
		}
	}
	clk := r.Net.Clock()
	exec := &execution{
		rt:     r,
		prog:   p,
		nodes:  append([]graph.NodeID(nil), nodes...),
		report: &Report{Program: p.Name, Started: clk.Now()},
		done:   done,
	}
	exec.startIteration(clk.Now(), 0)
}

type execution struct {
	rt     *Runtime
	prog   *Program
	nodes  []graph.NodeID
	report *Report
	done   func(*Report)

	iterStart simclock.Time
}

func (e *execution) clk() *simclock.Clock { return e.rt.Net.Clock() }

func (e *execution) startIteration(now simclock.Time, iter int) {
	if iter >= e.prog.Iterations {
		e.finish(now)
		return
	}
	e.iterStart = now
	// Migration point: no live distributed data here (§7.1).
	if e.rt.Adapter != nil {
		newNodes, decisionCost := e.rt.Adapter.MaybeMigrate(now, iter, e.nodes)
		delay := decisionCost
		var xfer []netsim.FlowSpec
		if newNodes != nil && !sameNodes(newNodes, e.nodes) {
			oldNodes := append([]graph.NodeID(nil), e.nodes...)
			e.report.Migrations = append(e.report.Migrations, MigrationEvent{
				Iteration: iter, At: now,
				From: oldNodes,
				To:   append([]graph.NodeID(nil), newNodes...),
			})
			e.nodes = append(e.nodes[:0:0], newNodes...)
			delay += e.rt.MigrationCost
			xfer = migrationFlows(oldNodes, e.nodes, e.rt.MigrationDataBytes)
		}
		e.report.AdaptSeconds += delay
		if delay > 0 || len(xfer) > 0 {
			adaptStart := now
			next := func(t simclock.Time) {
				e.report.AdaptSeconds += float64(t-adaptStart) - delay
				e.runStep(t, iter, 0)
			}
			run := func(t simclock.Time) {
				if len(xfer) > 0 {
					e.rt.Net.TransferGroup(xfer, e.rt.owner(), next)
				} else {
					next(t)
				}
			}
			if delay > 0 {
				e.clk().After(delay, "fx-adapt", run)
			} else {
				run(now)
			}
			return
		}
	}
	e.runStep(now, iter, 0)
}

func (e *execution) runStep(now simclock.Time, iter, step int) {
	if step >= len(e.prog.Steps) {
		e.report.IterationTimes = append(e.report.IterationTimes, float64(now-e.iterStart))
		e.startIteration(now, iter+1)
		return
	}
	s := &e.prog.Steps[step]
	next := func(t simclock.Time) { e.commPhase(t, iter, step) }
	if s.WorkPerNode == nil {
		next(now)
		return
	}
	work := s.WorkPerNode(len(e.nodes)) * e.rt.overheadFactor(len(e.nodes))
	if work <= 0 {
		next(now)
		return
	}
	// BSP compute phase: the step ends when the slowest node finishes.
	worst := 0.0
	for _, n := range e.nodes {
		if d := e.rt.Net.ComputeDuration(n, work); d > worst {
			worst = d
		}
	}
	e.clk().After(worst, "fx-compute:"+s.Name, next)
}

func (e *execution) commPhase(now simclock.Time, iter, step int) {
	s := &e.prog.Steps[step]
	next := func(t simclock.Time) { e.runStep(t, iter, step+1) }
	if s.Comm == nil {
		next(now)
		return
	}
	specs := s.Comm(e.nodes)
	e.rt.Net.TransferGroup(specs, e.rt.owner(), next)
}

func (e *execution) finish(now simclock.Time) {
	e.report.Ended = now
	e.report.Nodes = append([]graph.NodeID(nil), e.nodes...)
	if e.done != nil {
		e.done(e.report)
	}
}

// migrationFlows builds the state-redistribution transfers: every node
// leaving the mapping ships its partition to a distinct joining node.
// Nodes present in both mappings keep their partition locally.
func migrationFlows(oldNodes, newNodes []graph.NodeID, totalBytes float64) []netsim.FlowSpec {
	if totalBytes <= 0 {
		return nil
	}
	inNew := make(map[graph.NodeID]bool, len(newNodes))
	for _, n := range newNodes {
		inNew[n] = true
	}
	inOld := make(map[graph.NodeID]bool, len(oldNodes))
	for _, n := range oldNodes {
		inOld[n] = true
	}
	var leavers, joiners []graph.NodeID
	for _, n := range oldNodes {
		if !inNew[n] {
			leavers = append(leavers, n)
		}
	}
	for _, n := range newNodes {
		if !inOld[n] {
			joiners = append(joiners, n)
		}
	}
	per := totalBytes / float64(len(oldNodes))
	var out []netsim.FlowSpec
	for i, src := range leavers {
		if len(joiners) == 0 {
			break // shrinking mapping: partitions merge locally
		}
		dst := joiners[i%len(joiners)]
		out = append(out, netsim.FlowSpec{Src: src, Dst: dst, Bytes: per})
	}
	return out
}

func sameNodes(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[graph.NodeID]bool, len(a))
	for _, n := range a {
		seen[n] = true
	}
	for _, n := range b {
		if !seen[n] {
			return false
		}
	}
	return true
}

// RunToCompletion runs the program and drives the clock until it
// finishes, returning the report. Convenient for experiments where the
// program is the only actor besides already-scheduled traffic and
// collectors.
func (r *Runtime) RunToCompletion(p *Program, nodes []graph.NodeID) *Report {
	var out *Report
	r.Run(p, nodes, func(rep *Report) { out = rep })
	clk := r.Net.Clock()
	// Runaway guard: background tickers (collector polls, traffic) keep
	// the event queue non-empty forever, so a deadlocked program would
	// otherwise spin here. A year of virtual time is far beyond any
	// experiment.
	deadline := clk.Now() + simclock.Time(365*24*3600)
	for out == nil {
		if !clk.Step() {
			panic(fmt.Sprintf("fx: %q never completed (event queue empty)", p.Name))
		}
		if clk.Now() > deadline {
			panic(fmt.Sprintf("fx: %q made no progress for a year of virtual time (starved transfer?)", p.Name))
		}
	}
	return out
}
