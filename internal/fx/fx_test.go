package fx

import (
	"math"
	"testing"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topology"
	"repro/internal/traffic"

	clusterpkg "repro/internal/cluster"
)

func testbedNet(t *testing.T) (*simclock.Clock, *netsim.Network) {
	t.Helper()
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	return clk, n
}

func TestComputeOnlyProgram(t *testing.T) {
	_, n := testbedNet(t)
	rt := &Runtime{Net: n}
	p := &Program{
		Name:       "compute",
		Iterations: 3,
		Steps: []Step{
			{Name: "work", WorkPerNode: func(p int) float64 { return 2.0 / float64(p) }},
		},
	}
	rep := rt.RunToCompletion(p, []graph.NodeID{"m-1", "m-2"})
	// 3 iterations × (2/2 = 1 work unit at power 1) = 3 s.
	if math.Abs(rep.Elapsed()-3.0) > 1e-9 {
		t.Fatalf("elapsed = %v, want 3", rep.Elapsed())
	}
	if len(rep.IterationTimes) != 3 {
		t.Fatalf("iterations recorded = %d", len(rep.IterationTimes))
	}
	for _, it := range rep.IterationTimes {
		if math.Abs(it-1.0) > 1e-9 {
			t.Fatalf("iteration time = %v", it)
		}
	}
}

func TestSlowestNodeGatesComputePhase(t *testing.T) {
	_, n := testbedNet(t)
	n.SetHostLoad("m-2", 0.5) // m-2 computes at half speed
	rt := &Runtime{Net: n}
	p := &Program{
		Name: "bsp", Iterations: 1,
		Steps: []Step{{Name: "w", WorkPerNode: func(int) float64 { return 1 }}},
	}
	rep := rt.RunToCompletion(p, []graph.NodeID{"m-1", "m-2"})
	if math.Abs(rep.Elapsed()-2.0) > 1e-9 {
		t.Fatalf("elapsed = %v, want 2 (slowest node)", rep.Elapsed())
	}
}

func TestCommPhaseTiming(t *testing.T) {
	_, n := testbedNet(t)
	rt := &Runtime{Net: n}
	p := &Program{
		Name: "comm", Iterations: 1,
		Steps: []Step{{Name: "xfer", Comm: func(nodes []graph.NodeID) []netsim.FlowSpec {
			return []netsim.FlowSpec{{Src: nodes[0], Dst: nodes[1], Bytes: 100e6 / 8}}
		}}},
	}
	rep := rt.RunToCompletion(p, []graph.NodeID{"m-1", "m-2"})
	// 100 Mbit over 100 Mbps = 1 s.
	if math.Abs(rep.Elapsed()-1.0) > 1e-9 {
		t.Fatalf("elapsed = %v, want 1", rep.Elapsed())
	}
}

func TestCommContendWithTraffic(t *testing.T) {
	_, n := testbedNet(t)
	traffic.Blast(n, "m-6", "m-8", 90e6)
	rt := &Runtime{Net: n}
	mk := func(a, b graph.NodeID) *Report {
		p := &Program{
			Name: "x", Iterations: 1,
			Steps: []Step{{Name: "t", Comm: func(nodes []graph.NodeID) []netsim.FlowSpec {
				return []netsim.FlowSpec{{Src: nodes[0], Dst: nodes[1], Bytes: 10e6 / 8}}
			}}},
		}
		return rt.RunToCompletion(p, []graph.NodeID{a, b})
	}
	clean := mk("m-1", "m-2")
	busy := mk("m-4", "m-7") // crosses the blasted link
	if math.Abs(clean.Elapsed()-0.1) > 1e-9 {
		t.Fatalf("clean = %v", clean.Elapsed())
	}
	if math.Abs(busy.Elapsed()-1.0) > 1e-6 {
		t.Fatalf("busy = %v, want 1.0 (10 Mbps leftover)", busy.Elapsed())
	}
}

func TestOverheadFactor(t *testing.T) {
	_, n := testbedNet(t)
	rt := &Runtime{Net: n, CompiledNodes: 8, OverheadAlpha: 0.5}
	if got := rt.overheadFactor(8); got != 1 {
		t.Fatalf("factor(8) = %v", got)
	}
	if got := rt.overheadFactor(4); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("factor(4) = %v", got)
	}
	// Default alpha.
	rt2 := &Runtime{Net: n, CompiledNodes: 8}
	if got := rt2.overheadFactor(5); math.Abs(got-(1+0.55*0.6)) > 1e-12 {
		t.Fatalf("default factor(5) = %v", got)
	}
}

// fixedAdapter migrates to a predetermined set at a given iteration.
type fixedAdapter struct {
	at   int
	to   []graph.NodeID
	cost float64
}

func (f *fixedAdapter) MaybeMigrate(now simclock.Time, iter int, cur []graph.NodeID) ([]graph.NodeID, float64) {
	if iter == f.at {
		return f.to, f.cost
	}
	return nil, f.cost
}

func TestMigrationChangesNodesAndCharges(t *testing.T) {
	_, n := testbedNet(t)
	rt := &Runtime{
		Net:           n,
		Adapter:       &fixedAdapter{at: 1, to: []graph.NodeID{"m-7", "m-8"}, cost: 0.5},
		MigrationCost: 2.0,
	}
	p := &Program{
		Name: "mig", Iterations: 3,
		Steps: []Step{{Name: "w", WorkPerNode: func(int) float64 { return 1 }}},
	}
	rep := rt.RunToCompletion(p, []graph.NodeID{"m-1", "m-2"})
	if len(rep.Migrations) != 1 {
		t.Fatalf("migrations = %d", len(rep.Migrations))
	}
	if rep.Migrations[0].Iteration != 1 {
		t.Fatalf("migrated at iteration %d", rep.Migrations[0].Iteration)
	}
	if rep.Nodes[0] != "m-7" && rep.Nodes[1] != "m-7" {
		t.Fatalf("final nodes = %v", rep.Nodes)
	}
	// 3 iterations × 1 s compute + 3 × 0.5 decision + 1 × 2 migration.
	want := 3 + 3*0.5 + 2.0
	if math.Abs(rep.Elapsed()-want) > 1e-9 {
		t.Fatalf("elapsed = %v, want %v", rep.Elapsed(), want)
	}
	if math.Abs(rep.AdaptSeconds-(3*0.5+2.0)) > 1e-9 {
		t.Fatalf("adapt seconds = %v", rep.AdaptSeconds)
	}
}

func TestAdapterReturningSameSetDoesNotMigrate(t *testing.T) {
	_, n := testbedNet(t)
	rt := &Runtime{
		Net:           n,
		Adapter:       &fixedAdapter{at: 0, to: []graph.NodeID{"m-2", "m-1"}, cost: 0},
		MigrationCost: 100,
	}
	p := &Program{Name: "same", Iterations: 1,
		Steps: []Step{{Name: "w", WorkPerNode: func(int) float64 { return 1 }}}}
	rep := rt.RunToCompletion(p, []graph.NodeID{"m-1", "m-2"})
	// Same set in different order: no migration.
	if len(rep.Migrations) != 0 {
		t.Fatalf("migrations = %d", len(rep.Migrations))
	}
}

func TestMigrationDataTransferCost(t *testing.T) {
	// Migration ships state as real flows: 80 Mbit split across two
	// leavers at 100 Mbps each on disjoint paths ≈ 0.4 s extra.
	_, n := testbedNet(t)
	rt := &Runtime{
		Net:                n,
		Adapter:            &fixedAdapter{at: 1, to: []graph.NodeID{"m-7", "m-8"}},
		MigrationDataBytes: 20e6, // 10 MB per partition
	}
	p := &Program{
		Name: "mig-data", Iterations: 3,
		Steps: []Step{{Name: "w", WorkPerNode: func(int) float64 { return 1 }}},
	}
	rep := rt.RunToCompletion(p, []graph.NodeID{"m-1", "m-2"})
	// 3 s compute + one redistribution: each of m-1,m-2 ships 10 MB to a
	// whiteface host; paths share aspen->timberline (two 80 Mbit flows
	// over 100 Mbps shared = 1.6 s).
	want := 3 + 1.6
	if math.Abs(rep.Elapsed()-want) > 1e-6 {
		t.Fatalf("elapsed = %v, want %v", rep.Elapsed(), want)
	}
	if math.Abs(rep.AdaptSeconds-1.6) > 1e-6 {
		t.Fatalf("adapt seconds = %v", rep.AdaptSeconds)
	}
}

func TestMigrationDataTransferContends(t *testing.T) {
	// The same migration across a blasted link takes much longer — the
	// cost the adaptation module must weigh (§6: "this overhead has to
	// be considered when evaluating adaptation options").
	_, n := testbedNet(t)
	traffic.Blast(n, "m-6", "m-8", 90e6) // loads timberline->whiteface
	rt := &Runtime{
		Net:                n,
		Adapter:            &fixedAdapter{at: 1, to: []graph.NodeID{"m-7", "m-8"}},
		MigrationDataBytes: 20e6,
	}
	p := &Program{
		Name: "mig-busy", Iterations: 3,
		Steps: []Step{{Name: "w", WorkPerNode: func(int) float64 { return 1 }}},
	}
	rep := rt.RunToCompletion(p, []graph.NodeID{"m-1", "m-2"})
	// Both 10 MB partitions squeeze through the 10 Mbps leftover:
	// 160 Mbit / 10 Mbps = 16 s.
	if rep.AdaptSeconds < 10 {
		t.Fatalf("adapt seconds = %v; contention not reflected", rep.AdaptSeconds)
	}
}

func TestMigrationFlowsHelper(t *testing.T) {
	flows := migrationFlows(
		[]graph.NodeID{"a", "b", "c"},
		[]graph.NodeID{"a", "d", "e"},
		30e6,
	)
	// b and c leave; d and e join; 10 MB each.
	if len(flows) != 2 {
		t.Fatalf("flows = %+v", flows)
	}
	for _, f := range flows {
		if f.Bytes != 10e6 {
			t.Fatalf("partition = %v", f.Bytes)
		}
		if f.Src != "b" && f.Src != "c" {
			t.Fatalf("src = %v", f.Src)
		}
		if f.Dst != "d" && f.Dst != "e" {
			t.Fatalf("dst = %v", f.Dst)
		}
	}
	if migrationFlows([]graph.NodeID{"a"}, []graph.NodeID{"a"}, 1e6) != nil {
		t.Fatal("no-op migration produced flows")
	}
	if migrationFlows([]graph.NodeID{"a", "b"}, []graph.NodeID{"a"}, 1e6) != nil {
		t.Fatal("shrink produced flows")
	}
	if migrationFlows([]graph.NodeID{"a"}, []graph.NodeID{"b"}, 0) != nil {
		t.Fatal("zero bytes produced flows")
	}
}

func TestPatterns(t *testing.T) {
	nodes := []graph.NodeID{"a", "b", "c"}
	if got := len(AllToAll(10)(nodes)); got != 6 {
		t.Fatalf("AllToAll flows = %d", got)
	}
	a2at := AllToAllTotal(90)(nodes)
	if len(a2at) != 6 || a2at[0].Bytes != 10 {
		t.Fatalf("AllToAllTotal = %+v", a2at)
	}
	if AllToAllTotal(90)([]graph.NodeID{"a"}) != nil {
		t.Fatal("AllToAllTotal single node should be empty")
	}
	b := Broadcast(5)(nodes)
	if len(b) != 2 || b[0].Src != "a" {
		t.Fatalf("Broadcast = %+v", b)
	}
	g := Gather(5)(nodes)
	if len(g) != 2 || g[0].Dst != "a" {
		t.Fatalf("Gather = %+v", g)
	}
	rg := Ring(5)(nodes)
	if len(rg) != 6 {
		t.Fatalf("Ring flows = %d", len(rg))
	}
	comb := Combine(Broadcast(5), Gather(5))(nodes)
	if len(comb) != 4 {
		t.Fatalf("Combine = %d", len(comb))
	}
}

func TestRunPanicsOnBadInput(t *testing.T) {
	_, n := testbedNet(t)
	rt := &Runtime{Net: n}
	for name, fn := range map[string]func(){
		"no iterations": func() {
			rt.Run(&Program{Name: "x"}, []graph.NodeID{"m-1"}, nil)
		},
		"no nodes": func() {
			rt.Run(&Program{Name: "x", Iterations: 1}, nil, nil)
		},
		"router node": func() {
			rt.Run(&Program{Name: "x", Iterations: 1}, []graph.NodeID{"aspen"}, nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestRemosAdapterMigratesAwayFromTraffic is the end-to-end §8.3
// behavior: an iterative program on the whiteface side migrates to the
// aspen side once blast traffic appears on its links.
func TestRemosAdapterMigratesAwayFromTraffic(t *testing.T) {
	clk, n := testbedNet(t)
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := collector.New(collector.Config{
		Client:     snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:      clk,
		Addrs:      addrs,
		PollPeriod: 1,
	})
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	mod := core.New(core.Config{Source: col})
	adapter := &RemosAdapter{
		Modeler:   mod,
		Pool:      topology.TestbedHosts,
		Start:     "m-4",
		Metric:    clusterpkg.TestbedMetric(),
		Timeframe: core.TFHistory(10),
	}
	rt := &Runtime{Net: n, Adapter: adapter, MigrationCost: 1}

	// Interfering traffic between m-6 and m-8 from the start.
	traffic.Blast(n, "m-6", "m-8", 90e6)
	clk.RunUntil(15) // let the collector observe it

	// Program initially mapped onto the traffic side.
	p := &Program{
		Name: "adaptive", Iterations: 5,
		Steps: []Step{
			{Name: "w", WorkPerNode: func(int) float64 { return 2 }},
			{Name: "x", Comm: AllToAll(2e6)},
		},
	}
	rep := rt.RunToCompletion(p, []graph.NodeID{"m-4", "m-6", "m-7", "m-8"})
	if len(rep.Migrations) == 0 {
		t.Fatal("adapter never migrated away from traffic")
	}
	for _, id := range rep.Nodes {
		if id == "m-7" || id == "m-8" {
			t.Fatalf("final nodes %v still on the traffic side", rep.Nodes)
		}
	}
	if adapter.Checks == 0 {
		t.Fatal("adapter never checked")
	}
}
