package fx

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/simclock"
)

// RemosAdapter is the §7.3 adaptation module: at each migration point it
// queries Remos for the logical topology, computes the node-distance
// matrix, runs greedy clustering from the start node, and migrates when
// the candidate cluster's expected communication performance beats the
// current one by more than Threshold.
type RemosAdapter struct {
	Modeler *core.Modeler

	// Pool is the candidate host set (the nodes the program was invoked
	// on; migration can only target these).
	Pool []graph.NodeID

	// Start is the application-provided initial node, always selected.
	Start graph.NodeID

	// Metric converts measurements to distances.
	Metric cluster.Metric

	// Timeframe selects the measurement window.
	Timeframe core.Timeframe

	// Threshold is the minimum relative score improvement required to
	// migrate; the paper's experiments migrate "whenever the potential
	// improvement was positive" (Threshold 0), and observe needless
	// oscillation — a positive threshold damps it.
	Threshold float64

	// DecisionCost is the virtual seconds one adaptation check costs
	// (Remos queries plus clustering).
	DecisionCost float64

	// Every makes the adapter only check every N-th iteration (1 =
	// every iteration; 0 behaves like 1).
	Every int

	// Checks counts adaptation decisions taken (diagnostic).
	Checks int
}

// MaybeMigrate implements Adapter.
func (a *RemosAdapter) MaybeMigrate(now simclock.Time, iteration int, current []graph.NodeID) ([]graph.NodeID, float64) {
	every := a.Every
	if every <= 0 {
		every = 1
	}
	if iteration%every != 0 {
		return nil, 0
	}
	a.Checks++
	bw, err := a.Modeler.BandwidthMatrix(a.Pool, a.Timeframe)
	if err != nil {
		return nil, a.DecisionCost
	}
	var lat [][]float64
	if a.Metric.LatencyWeight > 0 {
		lat, err = a.Modeler.LatencyMatrix(a.Pool)
		if err != nil {
			return nil, a.DecisionCost
		}
	}
	dist := cluster.DistanceMatrix(bw, lat, a.Metric)
	cand, err := cluster.Greedy(a.Pool, dist, a.Start, len(current))
	if err != nil {
		return nil, a.DecisionCost
	}
	// Score the current mapping under the same measurements.
	idx := make([]int, 0, len(current))
	for _, n := range current {
		for i, p := range a.Pool {
			if p == n {
				idx = append(idx, i)
				break
			}
		}
	}
	curScore := cluster.Score(dist, idx)
	if curScore <= 0 {
		return nil, a.DecisionCost
	}
	improvement := (curScore - cand.Score) / curScore
	if improvement > a.Threshold {
		return cand.Nodes, a.DecisionCost
	}
	return nil, a.DecisionCost
}
