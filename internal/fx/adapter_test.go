package fx

import (
	"testing"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topology"
	"repro/internal/traffic"

	clusterpkg "repro/internal/cluster"
)

// adapterRig wires a full measurement stack for adapter tests.
func adapterRig(t *testing.T) (*simclock.Clock, *netsim.Network, *core.Modeler) {
	t.Helper()
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := collector.New(collector.Config{
		Client:     snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:      clk,
		Addrs:      addrs,
		PollPeriod: 1,
	})
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	return clk, n, core.New(core.Config{Source: col})
}

func TestRemosAdapterEverySkipsIterations(t *testing.T) {
	clk, _, mod := adapterRig(t)
	clk.Advance(10)
	a := &RemosAdapter{
		Modeler: mod,
		Pool:    topology.TestbedHosts,
		Start:   "m-4",
		Metric:  clusterpkg.TestbedMetric(),
		Every:   3,
	}
	cur := []graph.NodeID{"m-4", "m-5"}
	for iter := 0; iter < 9; iter++ {
		a.MaybeMigrate(clk.Now(), iter, cur)
	}
	if a.Checks != 3 { // iterations 0, 3, 6
		t.Fatalf("checks = %d, want 3", a.Checks)
	}
}

func TestRemosAdapterDecisionCostCharged(t *testing.T) {
	clk, _, mod := adapterRig(t)
	clk.Advance(10)
	a := &RemosAdapter{
		Modeler:      mod,
		Pool:         topology.TestbedHosts,
		Start:        "m-4",
		Metric:       clusterpkg.TestbedMetric(),
		DecisionCost: 1.5,
	}
	_, cost := a.MaybeMigrate(clk.Now(), 0, []graph.NodeID{"m-4", "m-5"})
	if cost != 1.5 {
		t.Fatalf("cost = %v", cost)
	}
}

func TestRemosAdapterThresholdDampsMarginalMoves(t *testing.T) {
	clk, n, mod := adapterRig(t)
	// Mild traffic: a better set exists, but only marginally better.
	traffic.Blast(n, "m-6", "m-8", 15e6)
	clk.Advance(15)
	cur := []graph.NodeID{"m-4", "m-6", "m-7", "m-8"} // lightly loaded links

	zero := &RemosAdapter{
		Modeler:   mod,
		Pool:      topology.TestbedHosts,
		Start:     "m-4",
		Metric:    clusterpkg.TestbedMetric(),
		Timeframe: core.TFHistory(10),
		Threshold: 0,
	}
	moved, _ := zero.MaybeMigrate(clk.Now(), 0, cur)
	if moved == nil {
		t.Fatal("threshold-0 adapter should chase the marginal improvement")
	}
	damped := &RemosAdapter{
		Modeler:   mod,
		Pool:      topology.TestbedHosts,
		Start:     "m-4",
		Metric:    clusterpkg.TestbedMetric(),
		Timeframe: core.TFHistory(10),
		Threshold: 0.9, // require a 90% score improvement
	}
	if moved, _ := damped.MaybeMigrate(clk.Now(), 0, cur); moved != nil {
		t.Fatalf("damped adapter migrated for a marginal gain: %v", moved)
	}
}

func TestRemosAdapterStaysOnGoodSet(t *testing.T) {
	clk, n, mod := adapterRig(t)
	traffic.Blast(n, "m-6", "m-8", 90e6)
	clk.Advance(15)
	a := &RemosAdapter{
		Modeler:   mod,
		Pool:      topology.TestbedHosts,
		Start:     "m-4",
		Metric:    clusterpkg.TestbedMetric(),
		Timeframe: core.TFHistory(10),
	}
	// Already on the best set: no move.
	cur := []graph.NodeID{"m-4", "m-5", "m-1", "m-2"}
	if moved, _ := a.MaybeMigrate(clk.Now(), 0, cur); moved != nil {
		t.Fatalf("adapter left the optimal set for %v", moved)
	}
}
