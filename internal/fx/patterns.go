package fx

import (
	"repro/internal/graph"
	"repro/internal/netsim"
)

// Collective-communication patterns as flow-set builders. These are the
// building blocks programs compose in Step.Comm; they model the volume
// and endpoints of each collective, while contention and timing come
// from the simulator.

// AllToAll exchanges bytesPerPair between every ordered pair of distinct
// nodes — the FFT transpose and Airshed redistribution pattern.
func AllToAll(bytesPerPair float64) func(nodes []graph.NodeID) []netsim.FlowSpec {
	return func(nodes []graph.NodeID) []netsim.FlowSpec {
		var out []netsim.FlowSpec
		for _, src := range nodes {
			for _, dst := range nodes {
				if src != dst {
					out = append(out, netsim.FlowSpec{Src: src, Dst: dst, Bytes: bytesPerPair})
				}
			}
		}
		return out
	}
}

// AllToAllTotal exchanges a fixed total volume regardless of node count:
// each of the P(P-1) ordered pairs carries total/P² bytes, the volume
// profile of transposing a fixed-size matrix.
func AllToAllTotal(totalBytes float64) func(nodes []graph.NodeID) []netsim.FlowSpec {
	return func(nodes []graph.NodeID) []netsim.FlowSpec {
		p := float64(len(nodes))
		if p < 2 {
			return nil
		}
		return AllToAll(totalBytes / (p * p))(nodes)
	}
}

// Broadcast sends bytes from the first node to every other node.
func Broadcast(bytes float64) func(nodes []graph.NodeID) []netsim.FlowSpec {
	return func(nodes []graph.NodeID) []netsim.FlowSpec {
		if len(nodes) < 2 {
			return nil
		}
		root := nodes[0]
		var out []netsim.FlowSpec
		for _, dst := range nodes[1:] {
			out = append(out, netsim.FlowSpec{Src: root, Dst: dst, Bytes: bytes})
		}
		return out
	}
}

// Gather sends bytes from every non-root node to the first node.
func Gather(bytes float64) func(nodes []graph.NodeID) []netsim.FlowSpec {
	return func(nodes []graph.NodeID) []netsim.FlowSpec {
		if len(nodes) < 2 {
			return nil
		}
		root := nodes[0]
		var out []netsim.FlowSpec
		for _, src := range nodes[1:] {
			out = append(out, netsim.FlowSpec{Src: src, Dst: root, Bytes: bytes})
		}
		return out
	}
}

// Ring exchanges bytes between cyclic neighbors (boundary exchange).
func Ring(bytes float64) func(nodes []graph.NodeID) []netsim.FlowSpec {
	return func(nodes []graph.NodeID) []netsim.FlowSpec {
		if len(nodes) < 2 {
			return nil
		}
		var out []netsim.FlowSpec
		for i := range nodes {
			j := (i + 1) % len(nodes)
			out = append(out,
				netsim.FlowSpec{Src: nodes[i], Dst: nodes[j], Bytes: bytes},
				netsim.FlowSpec{Src: nodes[j], Dst: nodes[i], Bytes: bytes},
			)
		}
		return out
	}
}

// Combine concatenates several pattern builders into one step.
func Combine(patterns ...func([]graph.NodeID) []netsim.FlowSpec) func(nodes []graph.NodeID) []netsim.FlowSpec {
	return func(nodes []graph.NodeID) []netsim.FlowSpec {
		var out []netsim.FlowSpec
		for _, p := range patterns {
			out = append(out, p(nodes)...)
		}
		return out
	}
}
