// Package replica implements a stateless read replica of a collector:
// a process that subscribes to the collector's replication feed (the
// WatchFeed subscription kind, internal/collector/feed.go), mirrors the
// fed state into an immutable copy-on-write store behind an
// atomic.Pointer, and serves the full query/watch op set with no
// collector round-trip on the query path.
//
// "Stateless" means the replica persists nothing: its entire state is
// reconstructible from one full feed snapshot, so a replica can be
// killed and restarted anywhere and is live again one snapshot later.
//
// # Staleness, honestly
//
// A replica is always somewhat behind its collector, and during a
// partition it falls arbitrarily far behind. Rather than pretend
// otherwise, the replica:
//
//   - extrapolates data ages across the gap (a sample that was 3s old
//     at the last feed update is reported as 13s old ten wall-seconds
//     later, with accuracy decayed by the collector's half-life), and
//   - fences hard past MaxStaleness: queries return the typed
//     ErrStaleReplica instead of arbitrarily old state. The failover
//     client treats that like a load-shed refusal — route around,
//     don't mark Down — because a fenced replica is alive and will
//     recover the moment its feed does.
//
// The replica's lifecycle is an explicit state machine (StateFor):
//
//	Syncing --first full snapshot--> Live
//	Live    --feed quiet > LagThreshold--> Lagging
//	Lagging --feed quiet > MaxStaleness--> Fenced
//	Fenced  --update applied--> Live (via resync if the stream broke)
//
// Any stream-coherence violation — a Seq gap, an Overflowed or Resync
// mark, a failed delta apply — tears the subscription down and
// re-subscribes from scratch; a fresh subscription has a fresh
// server-side cursor, so the first update is a full snapshot again.
package replica

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// State is the replica lifecycle state.
type State int

const (
	// Syncing: no full snapshot applied yet; every query refuses with
	// ErrStaleReplica.
	Syncing State = iota
	// Live: state applied within LagThreshold.
	Live
	// Lagging: feed quiet past LagThreshold but inside the fence;
	// answers are served with honestly extrapolated ages.
	Lagging
	// Fenced: feed quiet past MaxStaleness; queries refuse with
	// ErrStaleReplica until an update applies.
	Fenced
)

func (s State) String() string {
	switch s {
	case Syncing:
		return "syncing"
	case Live:
		return "live"
	case Lagging:
		return "lagging"
	case Fenced:
		return "fenced"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// StateFor is the state machine as a pure function: synced reports
// whether a full snapshot has ever been applied, sinceApply is the
// wall time since the newest applied update, lagAfter and fenceAfter
// are the Lagging and Fenced thresholds. A negative fenceAfter
// disables fencing (the replica serves arbitrarily stale state, ages
// still growing); a negative lagAfter disables the Lagging state.
func StateFor(synced bool, sinceApply, lagAfter, fenceAfter time.Duration) State {
	if !synced {
		return Syncing
	}
	if fenceAfter >= 0 && sinceApply > fenceAfter {
		return Fenced
	}
	if lagAfter >= 0 && sinceApply > lagAfter {
		return Lagging
	}
	return Live
}

// Config parameterizes a Replica.
type Config struct {
	// FeedAddr is the collector's query address to subscribe to.
	FeedAddr string
	// FeedAddrs lists additional feed addresses — a hot-standby pair's
	// members, say — that the feed loop rotates across on reconnect: if
	// the current feeder dies (or refuses as a standby), the next
	// attempt tries the next address. FeedAddr, when set, is tried
	// first.
	FeedAddrs []string
	// Client configures the feed connection (dial/IO timeouts).
	Client collector.ClientConfig

	// MaxStaleness is the fence: once the newest applied update is
	// older than this, queries refuse with ErrStaleReplica. 0 means
	// DefaultMaxStaleness; negative disables the fence.
	MaxStaleness time.Duration
	// LagThreshold is when the replica reports Lagging. 0 means
	// MaxStaleness/4 (or DefaultMaxStaleness/4 if the fence is
	// disabled); negative disables the Lagging state.
	LagThreshold time.Duration
	// ResyncBackoff is the initial delay between feed reconnect
	// attempts; it doubles per consecutive failure up to 16x, with
	// ±20% jitter. 0 means DefaultResyncBackoff.
	ResyncBackoff time.Duration
	// Seed seeds the backoff jitter; 0 derives one from the wall
	// clock so a fleet of replicas decorrelates naturally.
	Seed int64

	// Telemetry receives replica metrics; nil disables.
	Telemetry *telemetry.Registry
}

// Defaults for Config zero values.
const (
	DefaultMaxStaleness  = 30 * time.Second
	DefaultResyncBackoff = 500 * time.Millisecond
	maxBackoffMultiple   = 16
	backoffJitter        = 0.2
)

func (cfg Config) fill() Config {
	if cfg.FeedAddr != "" {
		cfg.FeedAddrs = append([]string{cfg.FeedAddr}, cfg.FeedAddrs...)
	}
	if cfg.MaxStaleness == 0 {
		cfg.MaxStaleness = DefaultMaxStaleness
	}
	if cfg.LagThreshold == 0 {
		base := cfg.MaxStaleness
		if base < 0 {
			base = DefaultMaxStaleness
		}
		cfg.LagThreshold = base / 4
	}
	if cfg.ResyncBackoff == 0 {
		cfg.ResyncBackoff = DefaultResyncBackoff
	}
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
	return cfg
}

// Replica mirrors one collector's state from its replication feed and
// serves the collector query surface from the mirror. The query path
// is a single atomic pointer load — no locks, no network.
//
// Replica implements collector.Source, ContextSource, VersionedSource,
// VersionNotifier, HealthSource, and TelemetrySource, so
// collector.ServeConfig can put a full query/watch server in front of
// it unchanged.
type Replica struct {
	cfg Config

	cur atomic.Pointer[store]

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	syncedCh  chan struct{}
	syncOnce  sync.Once
	prevEpoch atomic.Uint64 // last applied epoch, for lag-in-epochs

	// now is the wall clock; swapped in tests.
	now func() time.Time

	rng     *rand.Rand // reconnect-backoff jitter; feed goroutine only
	feedIdx int        // next feed-address rotation index; feed goroutine only

	versionMu   sync.Mutex
	versionSubs map[chan struct{}]struct{}

	stateMu   sync.Mutex
	lastState State

	tel          *telemetry.Registry
	telFulls     *telemetry.Counter
	telDeltas    *telemetry.Counter
	telErrs      *telemetry.Counter
	telResyncs   *telemetry.Counter
	telFenceRej  *telemetry.Counter
	telTerm      *telemetry.Gauge
	telFenceTrip *telemetry.Counter
	telFenced    *telemetry.Counter
	telEpoch     *telemetry.Gauge
	telLagEpochs *telemetry.Gauge
	telLagSecs   *telemetry.Gauge
	telState     *telemetry.Gauge
}

// New builds a Replica; call Start to begin syncing.
func New(cfg Config) *Replica {
	cfg = cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replica{
		cfg:      cfg,
		ctx:      ctx,
		cancel:   cancel,
		syncedCh: make(chan struct{}),
		now:      time.Now,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		tel:      cfg.Telemetry,
	}
	r.telFulls = r.tel.Counter("replica.updates.full")
	r.telDeltas = r.tel.Counter("replica.updates.delta")
	r.telErrs = r.tel.Counter("replica.updates.err")
	r.telResyncs = r.tel.Counter("replica.resyncs")
	r.telFenceRej = r.tel.Counter("replica.fencing.rejections")
	r.telTerm = r.tel.Gauge("replica.term")
	r.telFenceTrip = r.tel.Counter("replica.fence.trips")
	r.telFenced = r.tel.Counter("replica.queries.fenced")
	r.telEpoch = r.tel.Gauge("replica.epoch")
	r.telLagEpochs = r.tel.Gauge("replica.lag.epochs")
	r.telLagSecs = r.tel.Gauge("replica.lag.seconds")
	r.telState = r.tel.Gauge("replica.state")
	return r
}

// Start launches the feed loop and the state ticker. It returns
// immediately; use WaitSynced to block until the first snapshot.
func (r *Replica) Start() {
	r.wg.Add(2)
	go func() { defer r.wg.Done(); r.feedLoop() }()
	go func() { defer r.wg.Done(); r.stateLoop() }()
}

// WaitSynced blocks until the replica has applied its first full
// snapshot or the context ends.
func (r *Replica) WaitSynced(ctx context.Context) error {
	select {
	case <-r.syncedCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-r.ctx.Done():
		return errors.New("replica: closed before first sync")
	}
}

// Close stops the feed loop and waits for its goroutines.
func (r *Replica) Close() {
	r.cancel()
	r.wg.Wait()
}

// State reports the current lifecycle state.
func (r *Replica) State() State {
	st := r.cur.Load()
	if st == nil {
		return Syncing
	}
	return StateFor(true, st.staleness(r.now()), r.cfg.LagThreshold, r.cfg.MaxStaleness)
}

// Status is a point-in-time summary for operators (remos-stat, debug
// endpoints).
type Status struct {
	State     State
	Epoch     uint64
	Term      uint64        // HA lease term of the feeding leader (0 = no HA)
	Staleness time.Duration // time since last applied update
	Synced    bool
}

// Status reports the replica's current status.
func (r *Replica) Status() Status {
	st := r.cur.Load()
	if st == nil {
		return Status{State: Syncing}
	}
	stale := st.staleness(r.now())
	return Status{
		State:     StateFor(true, stale, r.cfg.LagThreshold, r.cfg.MaxStaleness),
		Epoch:     st.epoch,
		Term:      st.term,
		Staleness: stale,
		Synced:    true,
	}
}

// Telemetry implements collector.TelemetrySource.
func (r *Replica) Telemetry() *telemetry.Registry { return r.tel }

// ---------------------------------------------------------------------
// Feed loop: subscribe, apply, resync.

// errResync is the internal signal that the stream lost coherence and
// the subscription must be rebuilt from a fresh cursor.
var errResync = errors.New("replica: stream coherence lost, resyncing")

func (r *Replica) feedLoop() {
	backoff := r.cfg.ResyncBackoff
	for r.ctx.Err() == nil {
		ok, err := r.runFeedOnce(r.ctx)
		if r.ctx.Err() != nil {
			return
		}
		if err != nil && !errors.Is(err, errResync) {
			r.telErrs.Inc()
		}
		if ok {
			// The stream made progress before breaking; restart the
			// backoff ladder.
			backoff = r.cfg.ResyncBackoff
		}
		// Rotate to the next feed address: if the feeder died — or
		// refused as a hot-standby pair's non-leader — the next attempt
		// tries its peer instead of hammering the same address.
		r.feedIdx++
		if !r.sleep(jittered(backoff, r.rng)) {
			return
		}
		backoff *= 2
		if max := r.cfg.ResyncBackoff * maxBackoffMultiple; backoff > max {
			backoff = max
		}
	}
}

// jittered spreads d by ±backoffJitter so a fleet of replicas cut off
// by the same partition does not reconnect in lockstep.
func jittered(d time.Duration, rng *rand.Rand) time.Duration {
	return time.Duration(float64(d) * (1 + backoffJitter*(2*rng.Float64()-1)))
}

func (r *Replica) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.ctx.Done():
		return false
	}
}

// runFeedOnce runs one subscription lifetime: dial, subscribe, consume
// until the stream breaks. It reports whether any update was applied
// (progress resets the reconnect backoff).
func (r *Replica) runFeedOnce(ctx context.Context) (progress bool, err error) {
	addrs := r.cfg.FeedAddrs
	if len(addrs) == 0 {
		return false, errors.New("replica: no feed address configured")
	}
	cl, err := collector.DialConfig(addrs[r.feedIdx%len(addrs)], r.cfg.Client)
	if err != nil {
		return false, err
	}
	defer cl.Close()
	h, err := cl.Watch(ctx, collector.WatchRequest{Kind: collector.WatchFeed})
	if err != nil {
		return false, err
	}
	defer h.Cancel()
	return r.consumeFeed(ctx, h)
}

// consumeFeed applies updates until the stream ends or loses
// coherence. Coherence rules: Seq must be dense; Overflowed or Resync
// marks mean updates were missed or the stream re-based, and since a
// feed delta is only meaningful relative to the exact previous one,
// either forces a full resync (fresh subscription => fresh cursor =>
// full snapshot).
func (r *Replica) consumeFeed(ctx context.Context, h *collector.WatchHandle) (progress bool, err error) {
	var lastSeq uint64
	for {
		var u collector.WatchUpdate
		var open bool
		select {
		case u, open = <-h.C:
		case <-ctx.Done():
			return progress, ctx.Err()
		}
		if !open {
			if werr := h.Err(); werr != nil {
				return progress, werr
			}
			return progress, errors.New("replica: feed stream closed")
		}
		if u.Final {
			// Server drained us (graceful shutdown): reconnect.
			return progress, errors.New("replica: feed drained by server")
		}
		if needsResync(lastSeq, u, progress) {
			return progress, errResync
		}
		if u.Seq != 0 {
			lastSeq = u.Seq
		}
		if u.Err != "" {
			// Non-terminal evaluation error (e.g. collector has no
			// topology yet). The subscription recovers by itself.
			r.telErrs.Inc()
			continue
		}
		if u.Feed == nil {
			continue
		}
		if err := r.apply(u.Feed); err != nil {
			return progress, fmt.Errorf("%w (%v)", errResync, err)
		}
		progress = true
	}
}

// needsResync is the stream-coherence rule, as a pure function: a Seq
// gap means updates were dropped, Overflowed means the server's queue
// folded states together, and a Resync mark after progress means the
// stream re-based on another server — in every case the deltas no
// longer chain from our store, so only a fresh full snapshot is safe.
// (A Resync mark before any progress is fine: there is nothing to be
// incoherent with yet.)
func needsResync(lastSeq uint64, u collector.WatchUpdate, progress bool) bool {
	if u.Seq != 0 && lastSeq != 0 && u.Seq != lastSeq+1 {
		return true
	}
	if u.Overflowed {
		return true
	}
	// A Resync-marked update that carries a self-contained Full feed
	// payload is an in-band re-base — the source replaced its state
	// wholesale (checkpoint restore, HA term change) and re-shipped a
	// snapshot on the live subscription. Applying it IS the resync; no
	// fresh subscription needed.
	return u.Resync && progress && (u.Feed == nil || !u.Feed.Full)
}

// apply builds the successor store from one payload and publishes it.
func (r *Replica) apply(p *collector.FeedPayload) error {
	wall := r.now()
	prev := r.cur.Load()
	// Term fencing: a payload from a lease term below the applied one is
	// a deposed leader still feeding — reject it (the resulting resync
	// rotates to the live leader). A term advance is only coherent as a
	// fresh Full snapshot; a delta across terms chains from state the
	// new leader never had.
	if prev != nil && p.Term < prev.term {
		r.telFenceRej.Inc()
		return fmt.Errorf("replica: payload term %d below applied term %d (deposed leader)",
			p.Term, prev.term)
	}
	if prev != nil && p.Term > prev.term && !p.Full {
		return fmt.Errorf("replica: delta across term change (%d -> %d)", prev.term, p.Term)
	}
	var next *store
	var err error
	switch {
	case p.Full:
		next, err = applyFull(p, wall)
		r.telFulls.Inc()
		if prev != nil && err == nil {
			// A full snapshot over an existing store is a re-base:
			// the replica recovered from a coherence loss or a healed
			// partition. (The trigger side — errResync in feedLoop —
			// can fire without completing; this counts completions.)
			r.telResyncs.Inc()
		}
	case prev == nil:
		// A delta with nothing to apply it to: only possible if the
		// server-side cursor outlived our store, i.e. incoherent.
		return errors.New("replica: delta before first full snapshot")
	default:
		next, err = prev.applyDelta(p, wall)
		r.telDeltas.Inc()
	}
	if err != nil {
		return err
	}
	// lag.epochs counts collector epochs that were coalesced into this
	// update (0 = saw every epoch; the collector coalesces when the
	// replica is slow or the queue folds).
	if last := r.prevEpoch.Load(); last != 0 && next.epoch > last {
		r.telLagEpochs.Set(float64(next.epoch - last - 1))
	}
	r.prevEpoch.Store(next.epoch)
	r.cur.Store(next)
	r.telEpoch.Set(float64(next.epoch))
	r.telTerm.Set(float64(next.term))
	r.syncOnce.Do(func() { close(r.syncedCh) })
	r.notifyVersion()
	return nil
}

// stateLoop keeps the observable gauges fresh and counts state
// transitions; queries do not depend on it (state is computed on
// demand from the store's apply time).
func (r *Replica) stateLoop() {
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case <-r.ctx.Done():
			return
		}
		st := r.cur.Load()
		state := Syncing
		if st != nil {
			stale := st.staleness(r.now())
			r.telLagSecs.Set(stale.Seconds())
			state = StateFor(true, stale, r.cfg.LagThreshold, r.cfg.MaxStaleness)
		}
		r.telState.Set(float64(state))
		r.stateMu.Lock()
		if state == Fenced && r.lastState != Fenced {
			r.telFenceTrip.Inc()
		}
		r.lastState = state
		r.stateMu.Unlock()
	}
}

// ---------------------------------------------------------------------
// Query surface.

// gate loads the current store and enforces the staleness fence. Every
// query goes through it; the refusal is the typed ErrStaleReplica that
// the failover client routes around without marking this replica Down.
func (r *Replica) gate() (*store, error) {
	st := r.cur.Load()
	if st == nil {
		r.telFenced.Inc()
		return nil, fmt.Errorf("replica: not yet synced: %w", collector.ErrStaleReplica)
	}
	if fence := r.cfg.MaxStaleness; fence >= 0 && st.staleness(r.now()) > fence {
		r.telFenced.Inc()
		return nil, fmt.Errorf("replica: last update %.1fs ago: %w",
			st.staleness(r.now()).Seconds(), collector.ErrStaleReplica)
	}
	return st, nil
}

// Topology implements collector.Source.
func (r *Replica) Topology() (*collector.Topology, error) {
	st, err := r.gate()
	if err != nil {
		return nil, err
	}
	return st.topo, nil
}

// CheckFresh reports whether the replica would accept a query right
// now: nil, or the typed ErrStaleReplica refusal the staleness fence
// is answering. Long-lived serving layers (the matrix handler's
// Modeler) consult it per call so a fenced replica refuses batched
// answers even when a higher layer holds cached state.
func (r *Replica) CheckFresh() error {
	_, err := r.gate()
	return err
}

// ageAdjust mirrors the collector's ageAdjustLocked, but against the
// extrapolated clock: ages keep growing in wall time between feed
// updates, so a lagging replica's answers degrade honestly instead of
// freezing at their last-fed age.
func (st *store) ageAdjust(s stats.Stat, w *stats.Window, wall time.Time) stats.Stat {
	latest, ok := w.Latest()
	if !ok {
		return s
	}
	s.Age = math.Max(0, st.virtualNow(wall)-latest.Time)
	return s.AgeDecayed(st.halfLife)
}

// Utilization implements collector.Source.
func (r *Replica) Utilization(key collector.ChannelKey, span float64) (stats.Stat, error) {
	st, err := r.gate()
	if err != nil {
		return stats.NoData(), err
	}
	w := st.channels[key]
	if w == nil {
		return stats.NoData(), fmt.Errorf("collector: unknown channel %v", key)
	}
	return st.ageAdjust(w.Summary(span), w, r.now()), nil
}

// DataAge implements collector.Source.
func (r *Replica) DataAge(key collector.ChannelKey) (float64, error) {
	st, err := r.gate()
	if err != nil {
		return 0, err
	}
	w := st.channels[key]
	if w == nil {
		return 0, fmt.Errorf("collector: unknown channel %v", key)
	}
	latest, ok := w.Latest()
	if !ok {
		return math.Inf(1), nil
	}
	return math.Max(0, st.virtualNow(r.now())-latest.Time), nil
}

// Samples implements collector.Source.
func (r *Replica) Samples(key collector.ChannelKey) ([]stats.Sample, error) {
	st, err := r.gate()
	if err != nil {
		return nil, err
	}
	w := st.channels[key]
	if w == nil {
		return nil, fmt.Errorf("collector: unknown channel %v", key)
	}
	return w.Samples(), nil
}

// HostLoad implements collector.Source.
func (r *Replica) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	st, err := r.gate()
	if err != nil {
		return stats.NoData(), err
	}
	w := st.loads[node]
	if w == nil {
		return stats.NoData(), fmt.Errorf("collector: no load data for %q", node)
	}
	return st.ageAdjust(w.Summary(span), w, r.now()), nil
}

// Capacity mirrors Collector.Capacity.
func (r *Replica) Capacity(key collector.ChannelKey) (float64, bool) {
	st := r.cur.Load()
	if st == nil {
		return 0, false
	}
	v, ok := st.capacity[key]
	return v, ok
}

// Health implements collector.HealthSource: the agent health as of the
// last applied update.
func (r *Replica) Health() map[graph.NodeID]collector.AgentHealth {
	st := r.cur.Load()
	if st == nil {
		return map[graph.NodeID]collector.AgentHealth{}
	}
	out := make(map[graph.NodeID]collector.AgentHealth, len(st.health))
	for id, h := range st.health {
		out[id] = h
	}
	return out
}

// DataVersion implements collector.VersionedSource: the replica's
// version IS the collector epoch it has applied, so watch subscribers
// on a replica see the same epoch numbering as on the collector.
func (r *Replica) DataVersion() (uint64, bool) {
	st := r.cur.Load()
	if st == nil {
		return 0, false
	}
	return st.epoch, true
}

// SubscribeVersion implements collector.VersionNotifier; the server's
// watch loop uses it to wake on feed applies instead of polling.
func (r *Replica) SubscribeVersion() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	r.versionMu.Lock()
	if r.versionSubs == nil {
		r.versionSubs = make(map[chan struct{}]struct{})
	}
	r.versionSubs[ch] = struct{}{}
	r.versionMu.Unlock()
	release := func() {
		r.versionMu.Lock()
		delete(r.versionSubs, ch)
		r.versionMu.Unlock()
	}
	return ch, release
}

func (r *Replica) notifyVersion() {
	r.versionMu.Lock()
	for ch := range r.versionSubs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	r.versionMu.Unlock()
}

// The context-aware variants only need the liveness check — the data
// is already local.

// TopologyCtx implements collector.ContextSource.
func (r *Replica) TopologyCtx(ctx context.Context) (*collector.Topology, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.Topology()
}

// UtilizationCtx implements collector.ContextSource.
func (r *Replica) UtilizationCtx(ctx context.Context, key collector.ChannelKey, span float64) (stats.Stat, error) {
	if err := ctx.Err(); err != nil {
		return stats.NoData(), err
	}
	return r.Utilization(key, span)
}

// SamplesCtx implements collector.ContextSource.
func (r *Replica) SamplesCtx(ctx context.Context, key collector.ChannelKey) ([]stats.Sample, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.Samples(key)
}

// HostLoadCtx implements collector.ContextSource.
func (r *Replica) HostLoadCtx(ctx context.Context, node graph.NodeID, span float64) (stats.Stat, error) {
	if err := ctx.Err(); err != nil {
		return stats.NoData(), err
	}
	return r.HostLoad(node, span)
}

// DataAgeCtx implements collector.ContextSource.
func (r *Replica) DataAgeCtx(ctx context.Context, key collector.ChannelKey) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return r.DataAge(key)
}
