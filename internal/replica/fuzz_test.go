package replica

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"repro/internal/collector"
)

// encodePayload gob-encodes a feed payload the way the wire does
// (the payload rides inside a WatchUpdate, but the fuzz target decodes
// the payload shape directly — that is where apply-side invariants
// live).
func encodePayload(t testing.TB, p *collector.FeedPayload) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeDelta feeds arbitrary bytes through the gob decode + store
// apply path a replica runs on every feed update. The replica trusts
// its collector, but a partition can truncate or corrupt a stream
// mid-frame; whatever arrives, the apply must return an error (which
// triggers a resync) — never panic, never install a corrupt store.
func FuzzDecodeDelta(f *testing.F) {
	// Seed with real payloads: one full snapshot and a couple of
	// deltas from a live testbed collector.
	r := newRig(f)
	cur := &collector.FeedCursor{}
	full, err := r.col.FeedSince(cur)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(encodePayload(f, full))
	for i := 0; i < 2; i++ {
		r.clk.Advance(2)
		d, err := r.col.FeedSince(cur)
		if err != nil {
			f.Fatal(err)
		}
		if d != nil {
			f.Add(encodePayload(f, d))
		}
	}
	// A hand-rolled hostile payload: out-of-order samples.
	evil := *full
	evil.Full = false
	f.Add(encodePayload(f, &evil))

	wall := time.Unix(1000, 0)
	base, err := applyFull(full, wall)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var p collector.FeedPayload
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
			return // corrupt frame: the wire layer would drop it
		}
		// Apply as a full snapshot and as a delta against a real
		// store; errors are fine (they trigger resync), panics and
		// mutations of the base store are not.
		if st, err := applyFull(&p, wall); err == nil && st.topo == nil {
			t.Fatal("applyFull succeeded without topology")
		}
		epochBefore := base.epoch
		next, err := base.applyDelta(&p, wall)
		if base.epoch != epochBefore {
			t.Fatal("applyDelta mutated the base store")
		}
		if err != nil {
			return
		}
		// An accepted delta must keep per-window sample monotonicity.
		for k, w := range next.channels {
			s := w.Samples()
			for i := 1; i < len(s); i++ {
				if s[i].Time <= s[i-1].Time {
					t.Fatalf("channel %v: non-monotone samples after accepted delta", k)
				}
			}
		}
	})
}
