package replica

import (
	"fmt"
	"math"
	"time"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/stats"
)

// store is one immutable view of the fed collector state, published
// through Replica.cur (an atomic.Pointer, the same lock-free discipline
// as the Modeler's topology snapshots). Query goroutines Load it and
// read freely; the feed goroutine never mutates a published store —
// applying a delta builds a successor copy-on-write, cloning only the
// windows that received samples.
type store struct {
	epoch    uint64 // collector DataVersion this state reflects
	term     uint64 // HA lease term of the feeding leader (0 = no HA)
	topo     *collector.Topology
	channels map[collector.ChannelKey]*stats.Window
	loads    map[graph.NodeID]*stats.Window
	capacity map[collector.ChannelKey]float64
	health   map[graph.NodeID]collector.AgentHealth

	halfLife  float64 // collector accuracy half-life (0 = no decay)
	windowLen int
	windowAge float64

	// feedNow is the collector's virtual clock at the update that built
	// this store; appliedWall is the local wall clock at apply time.
	// Between updates (and across partitions) the replica extrapolates
	// the collector clock at one virtual second per wall second, so
	// reported data ages keep growing honestly while the feed is dark.
	feedNow     float64
	appliedWall time.Time
}

// virtualNow extrapolates the collector's clock to the local wall time.
func (st *store) virtualNow(wall time.Time) float64 {
	return st.feedNow + wall.Sub(st.appliedWall).Seconds()
}

// staleness is how long ago the state was applied, in wall time.
func (st *store) staleness(wall time.Time) time.Duration {
	return wall.Sub(st.appliedWall)
}

// applyFull builds a fresh store from a Full feed payload.
func applyFull(p *collector.FeedPayload, wall time.Time) (*store, error) {
	if !p.Full {
		return nil, fmt.Errorf("replica: applyFull on a delta payload")
	}
	topo, err := p.Topology()
	if err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	if topo == nil {
		return nil, fmt.Errorf("replica: full payload without topology")
	}
	st := &store{
		epoch:       p.Epoch,
		term:        p.Term,
		topo:        topo,
		channels:    make(map[collector.ChannelKey]*stats.Window, len(p.Channels)),
		loads:       make(map[graph.NodeID]*stats.Window, len(p.Loads)),
		capacity:    make(map[collector.ChannelKey]float64, len(p.Capacity)),
		health:      make(map[graph.NodeID]collector.AgentHealth, len(p.Health)),
		halfLife:    p.HalfLife,
		windowLen:   windowLen(p),
		windowAge:   p.WindowAge,
		feedNow:     p.Now,
		appliedWall: wall,
	}
	for k, v := range p.Capacity {
		st.capacity[k] = v
	}
	for k, samples := range p.Channels {
		w, err := rebuildWindow(st, samples)
		if err != nil {
			return nil, err
		}
		st.channels[k] = w
	}
	for id, samples := range p.Loads {
		w, err := rebuildWindow(st, samples)
		if err != nil {
			return nil, err
		}
		st.loads[graph.NodeID(id)] = w
	}
	for id, h := range p.Health {
		st.health[graph.NodeID(id)] = h
	}
	return st, nil
}

// applyDelta builds the successor store: shallow map copies, windows
// cloned only where new samples landed, topology/capacity replaced only
// when the payload re-shipped them.
func (st *store) applyDelta(p *collector.FeedPayload, wall time.Time) (*store, error) {
	if p.Full {
		return applyFull(p, wall)
	}
	next := &store{
		epoch:       p.Epoch,
		term:        st.term,
		topo:        st.topo,
		channels:    make(map[collector.ChannelKey]*stats.Window, len(st.channels)+len(p.Channels)),
		loads:       make(map[graph.NodeID]*stats.Window, len(st.loads)+len(p.Loads)),
		capacity:    st.capacity,
		health:      st.health,
		halfLife:    p.HalfLife,
		windowLen:   st.windowLen,
		windowAge:   st.windowAge,
		feedNow:     p.Now,
		appliedWall: wall,
	}
	for k, w := range st.channels {
		next.channels[k] = w
	}
	for id, w := range st.loads {
		next.loads[id] = w
	}
	topo, err := p.Topology()
	if err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	if topo != nil {
		next.topo = topo
		capacity := make(map[collector.ChannelKey]float64, len(p.Capacity))
		for k, v := range p.Capacity {
			capacity[k] = v
		}
		next.capacity = capacity
	}
	for k, samples := range p.Channels {
		w, err := extendWindow(next, next.channels[k], samples)
		if err != nil {
			return nil, err
		}
		next.channels[k] = w
	}
	for id, samples := range p.Loads {
		w, err := extendWindow(next, next.loads[graph.NodeID(id)], samples)
		if err != nil {
			return nil, err
		}
		next.loads[graph.NodeID(id)] = w
	}
	if p.Health != nil {
		health := make(map[graph.NodeID]collector.AgentHealth, len(p.Health))
		for id, h := range p.Health {
			health[graph.NodeID(id)] = h
		}
		next.health = health
	}
	return next, nil
}

// windowLen defends against a malformed payload: stats.NewWindow
// panics on a non-positive length and preallocates the ring, so a
// corrupt length must not drive an unbounded allocation.
func windowLen(p *collector.FeedPayload) int {
	const maxLen = 1 << 16
	if p.WindowLen <= 0 {
		return 512
	}
	if p.WindowLen > maxLen {
		return maxLen
	}
	return p.WindowLen
}

// rebuildWindow reconstructs a sample window from shipped samples,
// rejecting non-finite values and out-of-order times (a corrupt or
// adversarial payload must fail the apply, not poison the store).
func rebuildWindow(st *store, samples []stats.Sample) (*stats.Window, error) {
	w := stats.NewWindow(st.windowLen, st.windowAge)
	return addSamples(w, samples)
}

// extendWindow clones prev (nil = a channel new to this replica) and
// appends the shipped samples.
func extendWindow(st *store, prev *stats.Window, samples []stats.Sample) (*stats.Window, error) {
	var w *stats.Window
	if prev == nil {
		w = stats.NewWindow(st.windowLen, st.windowAge)
	} else {
		w = prev.Clone()
	}
	return addSamples(w, samples)
}

func addSamples(w *stats.Window, samples []stats.Sample) (*stats.Window, error) {
	for _, s := range samples {
		if math.IsNaN(s.Time) || math.IsInf(s.Time, 0) ||
			math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			return nil, fmt.Errorf("replica: non-finite sample in feed payload")
		}
		if err := w.Add(s.Time, s.Value); err != nil {
			return nil, fmt.Errorf("replica: %w", err)
		}
	}
	return w, nil
}
