package replica

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// ---------------------------------------------------------------------
// State machine.

func TestStateFor(t *testing.T) {
	const (
		lag   = 5 * time.Second
		fence = 30 * time.Second
	)
	cases := []struct {
		name       string
		synced     bool
		sinceApply time.Duration
		lag, fence time.Duration
		want       State
	}{
		{"unsynced is syncing", false, 0, lag, fence, Syncing},
		{"unsynced stays syncing however old", false, time.Hour, lag, fence, Syncing},
		{"fresh is live", true, 0, lag, fence, Live},
		{"at lag threshold still live", true, lag, lag, fence, Live},
		{"past lag threshold lagging", true, lag + time.Millisecond, lag, fence, Lagging},
		{"at fence still lagging", true, fence, lag, fence, Lagging},
		{"past fence fenced", true, fence + time.Millisecond, lag, fence, Fenced},
		{"way past fence fenced", true, time.Hour, lag, fence, Fenced},
		{"fence disabled never fences", true, time.Hour, lag, -1, Lagging},
		{"lag disabled skips lagging", true, fence, -1, fence, Live},
		{"both disabled always live", true, time.Hour, -1, -1, Live},
		{"recovery: fresh apply after fence", true, time.Millisecond, lag, fence, Live},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := StateFor(c.synced, c.sinceApply, c.lag, c.fence); got != c.want {
				t.Fatalf("StateFor(%v, %v, %v, %v) = %v, want %v",
					c.synced, c.sinceApply, c.lag, c.fence, got, c.want)
			}
		})
	}
}

func TestNeedsResync(t *testing.T) {
	u := func(seq uint64, overflowed, resync bool) collector.WatchUpdate {
		return collector.WatchUpdate{Seq: seq, Overflowed: overflowed, Resync: resync}
	}
	withFeed := func(u collector.WatchUpdate, full bool) collector.WatchUpdate {
		u.Feed = &collector.FeedPayload{Full: full}
		return u
	}
	cases := []struct {
		name     string
		lastSeq  uint64
		u        collector.WatchUpdate
		progress bool
		want     bool
	}{
		{"first update accepted at any seq", 0, u(7, false, false), false, false},
		{"dense successor ok", 3, u(4, false, false), true, false},
		{"seq gap forces resync", 3, u(5, false, false), true, true},
		{"seq going backward forces resync", 3, u(3, false, false), true, true},
		{"overflow forces resync", 3, u(4, true, false), true, true},
		{"overflow on first update forces resync", 0, u(1, true, false), false, true},
		{"resync mark after progress forces resync", 3, u(4, false, true), true, true},
		{"resync mark before progress is benign", 0, u(1, false, true), false, false},
		{"seq 0 (terminal) ignored by gap check", 3, u(0, false, false), true, false},
		{"in-band full re-base is benign",
			3, withFeed(u(4, false, true), true), true, false},
		{"resync with a delta payload still forces resync",
			3, withFeed(u(4, false, true), false), true, true},
		{"overflow trumps an in-band full",
			3, withFeed(u(4, true, true), true), true, true},
		{"seq gap trumps an in-band full",
			3, withFeed(u(6, false, true), true), true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := needsResync(c.lastSeq, c.u, c.progress); got != c.want {
				t.Fatalf("needsResync(%d, %+v, %v) = %v, want %v",
					c.lastSeq, c.u, c.progress, got, c.want)
			}
		})
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Syncing: "syncing", Live: "live", Lagging: "lagging", Fenced: "fenced",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

// ---------------------------------------------------------------------
// Store apply, against payloads from a real collector.

// rig is an in-process testbed collector producing real feed payloads.
type rig struct {
	clk *simclock.Clock
	net *netsim.Network
	col *collector.Collector
}

func newRig(t testing.TB) *rig {
	t.Helper()
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := collector.New(collector.Config{
		Client:        snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:         clk,
		Addrs:         addrs,
		PollPeriod:    2,
		PerHopLatency: topology.PerHopLatency,
	})
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	traffic.Blast(n, "m-6", "m-8", 40e6)
	clk.Advance(10)
	return &rig{clk: clk, net: n, col: col}
}

func chanKey(t testing.TB, col *collector.Collector, from, to graph.NodeID) collector.ChannelKey {
	t.Helper()
	topo, err := col.Topology()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range topo.Graph.Links() {
		if (l.A == from && l.B == to) || (l.A == to && l.B == from) {
			return topo.Key(l, l.DirFrom(from))
		}
	}
	t.Fatalf("no link %s--%s", from, to)
	return collector.ChannelKey{}
}

func TestStoreApplyFullThenDeltas(t *testing.T) {
	r := newRig(t)
	cur := &collector.FeedCursor{}
	wall := time.Unix(1000, 0)

	p, err := r.col.FeedSince(cur)
	if err != nil {
		t.Fatal(err)
	}
	st, err := applyFull(p, wall)
	if err != nil {
		t.Fatal(err)
	}
	if st.epoch != p.Epoch || st.topo == nil {
		t.Fatalf("store after full: epoch %d topo %v", st.epoch, st.topo)
	}

	// Three delta rounds; the final store must agree with the collector
	// sample for sample.
	for i := 0; i < 3; i++ {
		r.clk.Advance(2)
		p, err := r.col.FeedSince(cur)
		if err != nil {
			t.Fatal(err)
		}
		prev := st
		st, err = st.applyDelta(p, wall.Add(time.Duration(i)*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if st.epoch != p.Epoch {
			t.Fatalf("delta %d: epoch %d, want %d", i, st.epoch, p.Epoch)
		}
		// COW: the previous store must be untouched by the apply.
		if prev.epoch == st.epoch {
			t.Fatal("applyDelta mutated the previous store's epoch")
		}
	}

	key := chanKey(t, r.col, "m-6", "timberline")
	want, err := r.col.Samples(key)
	if err != nil {
		t.Fatal(err)
	}
	got := st.channels[key].Samples()
	if len(got) != len(want) {
		t.Fatalf("store has %d samples, collector %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: store %+v, collector %+v", i, got[i], want[i])
		}
	}

	// Utilization through the store must match the collector's answer
	// up to the age term (the store extrapolates in wall time).
	cs, err := r.col.Utilization(key, 6)
	if err != nil {
		t.Fatal(err)
	}
	ss := st.ageAdjust(st.channels[key].Summary(6), st.channels[key], wall.Add(3*time.Second))
	if math.Abs(cs.Median-ss.Median) > 1e-6 {
		t.Fatalf("median: store %v, collector %v", ss.Median, cs.Median)
	}
}

func TestStoreApplyRejectsIncoherentPayloads(t *testing.T) {
	r := newRig(t)
	cur := &collector.FeedCursor{}
	wall := time.Unix(1000, 0)
	p, err := r.col.FeedSince(cur)
	if err != nil {
		t.Fatal(err)
	}

	// A full payload stripped of its topology must fail.
	noTopo := *p
	noTopo.Topo = nil
	if _, err := applyFull(&noTopo, wall); err == nil {
		t.Fatal("applyFull accepted a full payload without topology")
	}

	st, err := applyFull(p, wall)
	if err != nil {
		t.Fatal(err)
	}

	// Replaying the same samples again violates per-channel sample
	// monotonicity — the apply must fail (the replica then resyncs)
	// rather than silently corrupt the windows.
	replay := *p
	replay.Full = false
	replay.Topo = nil
	replay.Epoch = p.Epoch + 1
	if _, err := st.applyDelta(&replay, wall); err == nil {
		t.Fatal("applyDelta accepted out-of-order samples")
	}

	// Non-finite samples are rejected.
	bad := collector.FeedPayload{
		Epoch: p.Epoch + 1,
		Channels: map[collector.ChannelKey][]stats.Sample{
			{Global: 0}: {{Time: math.NaN(), Value: 1}},
		},
	}
	if _, err := st.applyDelta(&bad, wall); err == nil {
		t.Fatal("applyDelta accepted a NaN sample time")
	}
}

// ---------------------------------------------------------------------
// End-to-end: replica over a served collector feed.

// lockedFeedSource serializes collector access between the TCP server's
// handler goroutines and the test goroutine driving the virtual clock
// (simclock has no internal locking). DataVersion and SubscribeVersion
// are internally synchronized and skip the lock — the server's watch
// loop blocks on them while holding nothing.
type lockedFeedSource struct {
	mu  *sync.Mutex
	col *collector.Collector
}

func (s *lockedFeedSource) Topology() (*collector.Topology, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.Topology()
}

func (s *lockedFeedSource) Utilization(key collector.ChannelKey, span float64) (stats.Stat, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.Utilization(key, span)
}

func (s *lockedFeedSource) Samples(key collector.ChannelKey) ([]stats.Sample, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.Samples(key)
}

func (s *lockedFeedSource) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.HostLoad(node, span)
}

func (s *lockedFeedSource) DataAge(key collector.ChannelKey) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.DataAge(key)
}

func (s *lockedFeedSource) Health() map[graph.NodeID]collector.AgentHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.Health()
}

func (s *lockedFeedSource) FeedSince(cur *collector.FeedCursor) (*collector.FeedPayload, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.FeedSince(cur)
}

func (s *lockedFeedSource) DataVersion() (uint64, bool) { return s.col.DataVersion() }

func (s *lockedFeedSource) SubscribeVersion() (<-chan struct{}, func()) {
	return s.col.SubscribeVersion()
}

// clockDriver advances the virtual clock from a goroutine, like the
// daemon's real-time driver: 20 virtual seconds per wall second, so
// the 2s poll period produces a feed heartbeat every ~100ms wall.
func clockDriver(mu *sync.Mutex, clk *simclock.Clock) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				mu.Lock()
				clk.Advance(0.2)
				mu.Unlock()
			case <-done:
				return
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

func waitFor(t *testing.T, within time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", within, what)
}

func TestReplicaSyncServeFenceRecover(t *testing.T) {
	baseline := runtime.NumGoroutine()
	r := newRig(t)
	var mu sync.Mutex
	src := &lockedFeedSource{mu: &mu, col: r.col}
	srv, err := collector.Serve(src, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	stopClock := clockDriver(&mu, r.clk)

	rep := New(Config{
		FeedAddr:      addr,
		MaxStaleness:  1200 * time.Millisecond,
		LagThreshold:  300 * time.Millisecond,
		ResyncBackoff: 25 * time.Millisecond,
		Seed:          1,
		Telemetry:     telemetry.NewRegistry(),
	})
	rep.Start()
	defer rep.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rep.WaitSynced(ctx); err != nil {
		t.Fatalf("replica never synced: %v", err)
	}

	// Live answers must agree with the collector.
	key := func() collector.ChannelKey {
		mu.Lock()
		defer mu.Unlock()
		return chanKey(t, r.col, "m-6", "timberline")
	}()
	repTopo, err := rep.Topology()
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	colTopo, _ := r.col.Topology()
	mu.Unlock()
	if repTopo.Graph.NumLinks() != colTopo.Graph.NumLinks() {
		t.Fatalf("replica topo has %d links, collector %d",
			repTopo.Graph.NumLinks(), colTopo.Graph.NumLinks())
	}
	waitFor(t, 3*time.Second, "replica live", func() bool { return rep.State() == Live })
	if _, err := rep.Utilization(key, 6); err != nil {
		t.Fatal(err)
	}
	if v, ok := rep.Capacity(key); !ok || v != 100e6 {
		t.Fatalf("replica capacity = %v, %v; want 100e6", v, ok)
	}
	if len(rep.Health()) == 0 {
		t.Fatal("replica serves no health data")
	}
	if ver, ok := rep.DataVersion(); !ok || ver == 0 {
		t.Fatalf("replica DataVersion = %d, %v", ver, ok)
	}

	// Partition: kill the feed server. The replica serves increasingly
	// old answers (ages growing in wall time), then fences.
	epochAtKill, _ := rep.DataVersion()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	time.Sleep(400 * time.Millisecond) // inside the fence
	st, err := rep.Utilization(key, 6)
	if err != nil {
		t.Fatalf("pre-fence query refused: %v", err)
	}
	if st.Age < 0.3 {
		t.Fatalf("pre-fence age %.3fs does not reflect the partition", st.Age)
	}

	waitFor(t, 3*time.Second, "replica fenced", func() bool { return rep.State() == Fenced })
	// Dwell in the fenced state: every query across the window must be
	// the typed refusal — zero unmarked-fresh answers — and the state
	// ticker must get to observe the transition.
	fencedUntil := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(fencedUntil) {
		if _, err := rep.Utilization(key, 6); !errors.Is(err, collector.ErrStaleReplica) {
			t.Fatalf("fenced query err = %v, want ErrStaleReplica", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := rep.Topology(); !errors.Is(err, collector.ErrStaleReplica) {
		t.Fatalf("fenced topology err = %v, want ErrStaleReplica", err)
	}
	// Lifecycle classification: stale is routable-around, not semantic.
	if _, err := rep.Utilization(key, 6); !collector.IsLifecycleError(err) {
		t.Fatal("ErrStaleReplica must classify as a lifecycle error")
	}

	// Heal: re-serve on the same address; the replica resyncs with a
	// fresh full snapshot and catches up past its pre-partition epoch.
	srv2, err := collector.Serve(src, addr)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "replica recovered", func() bool {
		if rep.State() != Live {
			return false
		}
		ver, _ := rep.DataVersion()
		return ver > epochAtKill
	})
	if _, err := rep.Utilization(key, 6); err != nil {
		t.Fatalf("post-recovery query refused: %v", err)
	}
	tel := rep.Telemetry().Snapshot()
	if tel.Counters["replica.updates.full"] < 2 {
		t.Fatalf("expected a full re-snapshot after the partition; fulls = %d",
			tel.Counters["replica.updates.full"])
	}
	if tel.Counters["replica.fence.trips"] == 0 {
		t.Fatal("fence trip not counted")
	}
	if tel.Counters["replica.queries.fenced"] == 0 {
		t.Fatal("fenced queries not counted")
	}

	// Teardown everything and verify no goroutines leak.
	srv2.Close()
	stopClock()
	rep.Close()
	waitFor(t, 10*time.Second, fmt.Sprintf("goroutines back to ~%d", baseline), func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}

func TestReplicaServesWatches(t *testing.T) {
	r := newRig(t)
	var mu sync.Mutex
	src := &lockedFeedSource{mu: &mu, col: r.col}
	srv, err := collector.Serve(src, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stopClock := clockDriver(&mu, r.clk)
	defer stopClock()

	rep := New(Config{FeedAddr: srv.Addr(), Seed: 1})
	rep.Start()
	defer rep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rep.WaitSynced(ctx); err != nil {
		t.Fatal(err)
	}

	// Serve the replica itself over TCP and subscribe a version watch
	// to it: epoch numbers must advance as the feed applies.
	rsrv, err := collector.Serve(rep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()
	cl, err := collector.Dial(rsrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h, err := cl.Watch(ctx, collector.WatchRequest{Kind: collector.WatchVersion})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Cancel()
	var first, second collector.WatchUpdate
	select {
	case first = <-h.C:
	case <-ctx.Done():
		t.Fatal("no first watch update through the replica")
	}
	select {
	case second = <-h.C:
	case <-ctx.Done():
		t.Fatal("no second watch update through the replica")
	}
	if second.Epoch <= first.Epoch {
		t.Fatalf("watch epochs through replica did not advance: %d then %d",
			first.Epoch, second.Epoch)
	}

	// The feed kind must be refused by a replica's server (replicas
	// do not re-feed; chaining goes through the collector).
	if _, err := cl.Watch(ctx, collector.WatchRequest{Kind: collector.WatchFeed}); err == nil {
		t.Fatal("feed subscription on a replica succeeded; replicas do not chain")
	}
}

// TestReplicaTermFencing drives payloads with explicit lease terms
// through Replica.apply and checks the split-brain fencing rules: a
// payload stamped with a term below the applied one (a deposed leader
// still feeding) is rejected and counted, and a term advance is only
// coherent as a fresh Full snapshot — a delta across terms chains from
// state the new leader never had.
func TestReplicaTermFencing(t *testing.T) {
	r := newRig(t)
	p, err := r.col.FeedSince(&collector.FeedCursor{})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		term    uint64
		full    bool
		wantErr bool
		fenced  bool // counts toward replica.fencing.rejections
	}{
		{name: "same-term delta", term: 2, full: false, wantErr: false},
		{name: "stale-term full", term: 1, full: true, wantErr: true, fenced: true},
		{name: "stale-term delta", term: 1, full: false, wantErr: true, fenced: true},
		{name: "term advance as delta", term: 3, full: false, wantErr: true},
		{name: "term advance as full", term: 3, full: true, wantErr: false},
	}

	rep := New(Config{FeedAddrs: []string{"unused:0"}, Telemetry: telemetry.NewRegistry()})
	base := *p
	base.Term = 2
	if err := rep.apply(&base); err != nil {
		t.Fatalf("seed full at term 2: %v", err)
	}

	var wantFenced uint64
	nextEpoch := p.Epoch
	for _, tc := range cases {
		nextEpoch++
		q := collector.FeedPayload{Epoch: nextEpoch, Term: tc.term, Full: tc.full}
		if tc.full {
			full := *p
			full.Epoch = nextEpoch
			full.Term = tc.term
			q = full
		}
		err := rep.apply(&q)
		if tc.wantErr && err == nil {
			t.Errorf("%s: apply accepted the payload", tc.name)
		}
		if !tc.wantErr && err != nil {
			t.Errorf("%s: apply rejected the payload: %v", tc.name, err)
		}
		if tc.fenced {
			wantFenced++
		}
		got := rep.Telemetry().Snapshot().Counters["replica.fencing.rejections"]
		if got != wantFenced {
			t.Errorf("%s: replica.fencing.rejections = %d, want %d", tc.name, got, wantFenced)
		}
	}

	// The survivor state is the term-3 full; its term is visible to
	// clients through Status.
	if got := rep.Status().Term; got != 3 {
		t.Fatalf("final term = %d, want 3", got)
	}
}
