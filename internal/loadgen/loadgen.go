// Package loadgen drives a Remos query plane at controlled load and
// measures the latency distribution it answers with. It generates a
// mixed workload — cheap point queries (channel utilization) and
// batched flow-matrix queries — against one or more Sources (typically
// failover handles over a replica set), in either of the two classic
// load-testing disciplines:
//
//   - closed loop: Workers goroutines each issue the next query the
//     moment the previous one returns, measuring the plane's capacity;
//   - open loop: arrivals are paced at a fixed Rate regardless of how
//     fast answers come back, measuring latency at an offered load —
//     including coordinated-omission-free queue wait, because an op's
//     latency clock starts at its scheduled arrival, not its issue.
//
// Results separate real failures (protocol or transport errors) from
// typed lifecycle refusals (shed, busy, stale, not-leader), because a
// plane under overload is expected to refuse honestly, not to corrupt.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/telemetry"
)

// Target is the query surface one worker drives. Matrix ops need the
// target to also implement collector.MatrixSource (the TCP client and
// the failover handle both do).
type Target = collector.Source

// Config parameterizes one load run.
type Config struct {
	// Targets are the query handles workers are spread across
	// round-robin. Give each worker group its own DialCollectors handle
	// (shuffled preference) to spread load over a replica set; a single
	// shared handle pins every query to one preferred replica.
	Targets []Target

	// Workers is the closed-loop concurrency, and in open loop the
	// bound on in-flight queries (default 8).
	Workers int

	// Rate is the open-loop offered load in queries/second; 0 selects
	// closed loop.
	Rate float64

	// Duration bounds the run (default 5s); the context can end it
	// earlier.
	Duration time.Duration

	// MatrixFrac is the fraction of ops issued as batched matrix
	// queries (0..1); the rest are point utilization queries.
	MatrixFrac float64

	// MatrixSize is the N of the N×N node set a matrix op asks about
	// (default 8, clamped to the topology's host count).
	MatrixSize int

	// Span is the measurement window point queries ask over (seconds;
	// 0 = latest sample).
	Span float64

	// Seed makes the op mix and key choice reproducible (0 = seed 1).
	Seed int64

	// Telemetry optionally receives the latency quantiles under
	// "loadgen.query_ms" / "loadgen.matrix_ms"; nil uses a private
	// registry.
	Telemetry *telemetry.Registry

	// Window is the latency-quantile ring size (default 1<<15 — big
	// enough that a p999 over a multi-second run is meaningful).
	Window int
}

// Result summarizes one load run. Latencies are milliseconds and
// include open-loop queue wait; percentiles are NaN when the op class
// saw no completions.
//
// Queries counts effective pair-queries answered: a point query is 1,
// a completed N×M matrix op is N×M — the batched op exists precisely
// so one wire round trip answers a whole matrix of queries, and the
// plane's query throughput is what the batching buys.
type Result struct {
	Ops        uint64        // completed wire ops (point + matrix)
	MatrixOps  uint64        // completed matrix ops (subset of Ops)
	Queries    uint64        // effective pair-queries answered (matrix = N×M)
	Errors     uint64        // protocol or transport failures
	Refusals   uint64        // typed lifecycle refusals (shed/busy/stale/not-leader)
	Dropped    uint64        // open loop: arrivals discarded because Workers were saturated
	Elapsed    time.Duration // measured wall time of the run
	Throughput float64       // effective queries per second
	OpRate     float64       // wire ops per second

	QueryP50, QueryP99, QueryP999    float64 // point-query latency, ms
	MatrixP50, MatrixP99, MatrixP999 float64 // matrix latency, ms
}

func (r *Result) String() string {
	return fmt.Sprintf(
		"%.0f queries/s (%.0f wire ops/s; %d ops, %d matrix, %d errors, %d refusals, %d dropped) in %.2fs; "+
			"query p50/p99/p999 %.3f/%.3f/%.3f ms; matrix p50/p99/p999 %.3f/%.3f/%.3f ms",
		r.Throughput, r.OpRate, r.Ops, r.MatrixOps, r.Errors, r.Refusals, r.Dropped,
		r.Elapsed.Seconds(),
		r.QueryP50, r.QueryP99, r.QueryP999,
		r.MatrixP50, r.MatrixP99, r.MatrixP999)
}

// workload is the precomputed query universe: channel keys and host
// sets enumerated from one topology fetch, so the hot loop never
// re-asks for the map.
type workload struct {
	keys  []collector.ChannelKey
	hosts []graph.NodeID
}

// refused reports whether err is a typed lifecycle refusal rather than
// a protocol failure.
func refused(err error) bool {
	return collector.IsLifecycleError(err) ||
		errors.Is(err, collector.ErrStaleReplica) ||
		errors.Is(err, collector.ErrNotLeader) ||
		errors.Is(err, collector.ErrTooManySubscriptions)
}

// Run executes one load run and blocks until it completes.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.MatrixSize <= 0 {
		cfg.MatrixSize = 8
	}
	if cfg.Window <= 0 {
		cfg.Window = 1 << 15
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MatrixFrac < 0 || cfg.MatrixFrac > 1 {
		return nil, fmt.Errorf("loadgen: MatrixFrac %g out of [0,1]", cfg.MatrixFrac)
	}
	if cfg.MatrixFrac > 0 {
		for _, t := range cfg.Targets {
			if _, ok := t.(collector.MatrixSource); !ok {
				return nil, fmt.Errorf("loadgen: target %T cannot serve matrix ops", t)
			}
		}
	}

	// One topology fetch seeds the whole query universe.
	topo, err := cfg.Targets[0].Topology()
	if err != nil {
		return nil, fmt.Errorf("loadgen: topology: %w", err)
	}
	w := &workload{}
	for _, l := range topo.Graph.Links() {
		w.keys = append(w.keys, topo.Key(l, graph.AtoB), topo.Key(l, graph.BtoA))
	}
	w.hosts = topo.Graph.ComputeNodes()
	if len(w.keys) == 0 || len(w.hosts) == 0 {
		return nil, fmt.Errorf("loadgen: topology has no channels or hosts")
	}
	if cfg.MatrixSize > len(w.hosts) {
		cfg.MatrixSize = len(w.hosts)
	}

	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	qQuery := reg.Quantile("loadgen.query_ms", cfg.Window)
	qMatrix := reg.Quantile("loadgen.matrix_ms", cfg.Window)

	res := &Result{}
	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// issue runs one op; arrival is when the op was scheduled (open
	// loop) or started (closed loop), so latency includes queue wait.
	issue := func(t Target, rng *rand.Rand, arrival time.Time) {
		var err error
		matrix := cfg.MatrixFrac > 0 && rng.Float64() < cfg.MatrixFrac
		cells := uint64(1)
		if matrix {
			n := cfg.MatrixSize
			base := rng.Intn(len(w.hosts))
			nodes := make([]graph.NodeID, n)
			for i := range nodes {
				nodes[i] = w.hosts[(base+i)%len(w.hosts)]
			}
			cells = uint64(n) * uint64(n)
			_, err = t.(collector.MatrixSource).MatrixQuery(ctx, &collector.MatrixRequest{
				Srcs: nodes, Dsts: nodes, TFKind: 2, Span: cfg.Span,
			})
		} else {
			_, err = w.queryOnce(ctx, t, rng, cfg.Span)
		}
		ms := float64(time.Since(arrival)) / float64(time.Millisecond)
		switch {
		case err == nil:
			atomic.AddUint64(&res.Ops, 1)
			atomic.AddUint64(&res.Queries, cells)
			if matrix {
				atomic.AddUint64(&res.MatrixOps, 1)
				qMatrix.Observe(ms)
			} else {
				qQuery.Observe(ms)
			}
		case ctx.Err() != nil, errors.Is(err, collector.ErrDeadlineExceeded):
			// The run's own deadline cut the op off — not the plane's
			// fault, not a data point. The typed budget error can arrive
			// a hair before ctx.Err() flips: every op's budget IS the
			// run's remaining time, so a server or failover handle that
			// gives up on it early is still reporting our own deadline.
		case refused(err):
			if n := atomic.AddUint64(&res.Refusals, 1); n <= 5 && os.Getenv("LOADGEN_DEBUG") != "" {
				fmt.Fprintf(os.Stderr, "refusal: %v\n", err)
			}
		default:
			atomic.AddUint64(&res.Errors, 1)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	if cfg.Rate <= 0 {
		// Closed loop: every worker keeps exactly one query in flight.
		for i := 0; i < cfg.Workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
				t := cfg.Targets[i%len(cfg.Targets)]
				for ctx.Err() == nil {
					issue(t, rng, time.Now())
				}
			}(i)
		}
	} else {
		// Open loop: a pacer stamps arrivals at the offered rate and
		// hands them to a bounded worker pool; arrivals that find every
		// worker busy are dropped (and counted) rather than queued
		// unboundedly or — worse — silently slowing the arrival clock.
		work := make(chan time.Time, cfg.Workers)
		for i := 0; i < cfg.Workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
				t := cfg.Targets[i%len(cfg.Targets)]
				for arrival := range work {
					issue(t, rng, arrival)
				}
			}(i)
		}
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		next := start
		for ctx.Err() == nil {
			now := time.Now()
			// Dispatch every arrival due by now; sub-millisecond pacing
			// batches arrivals instead of trusting the OS timer.
			for !next.After(now) {
				select {
				case work <- next:
				default:
					atomic.AddUint64(&res.Dropped, 1)
				}
				next = next.Add(interval)
			}
			sleep := time.Until(next)
			if sleep > time.Millisecond {
				sleep = time.Millisecond
			}
			timer := time.NewTimer(sleep)
			select {
			case <-ctx.Done():
			case <-timer.C:
			}
			timer.Stop()
		}
		close(work)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if s := res.Elapsed.Seconds(); s > 0 {
		res.Throughput = float64(res.Queries) / s
		res.OpRate = float64(res.Ops) / s
	}
	qp := qQuery.Percentiles(50, 99, 99.9)
	res.QueryP50, res.QueryP99, res.QueryP999 = qp[0], qp[1], qp[2]
	mp := qMatrix.Percentiles(50, 99, 99.9)
	res.MatrixP50, res.MatrixP99, res.MatrixP999 = mp[0], mp[1], mp[2]
	return res, nil
}

// queryOnce issues one point query — a channel-utilization read over a
// random channel, the cheapest realistic unit of query-plane load.
func (w *workload) queryOnce(ctx context.Context, t Target, rng *rand.Rand, span float64) (any, error) {
	key := w.keys[rng.Intn(len(w.keys))]
	if cs, ok := t.(collector.ContextSource); ok {
		return cs.UtilizationCtx(ctx, key, span)
	}
	return t.Utilization(key, span)
}
