package loadgen_test

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/remos"
)

func servedTarget(t *testing.T) loadgen.Target {
	t.Helper()
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.StartBlast("m-6", "m-8", 60e6)
	tb.Run(30)
	addr, shutdown, err := tb.ServeCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdown() })
	src, err := remos.DialCollectors(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	return src
}

func TestClosedLoopSmoke(t *testing.T) {
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:    []loadgen.Target{servedTarget(t)},
		Workers:    4,
		Duration:   500 * time.Millisecond,
		MatrixFrac: 0.2,
		MatrixSize: 4,
		Span:       10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("closed loop completed zero ops")
	}
	if res.Errors != 0 || res.Refusals != 0 {
		t.Fatalf("healthy plane produced %d errors, %d refusals: %v", res.Errors, res.Refusals, res)
	}
	if res.MatrixOps == 0 {
		t.Fatalf("matrix-frac 0.2 over %d ops issued zero matrices", res.Ops)
	}
	// Effective queries: each 4×4 matrix counts 16, each point query 1.
	want := (res.Ops - res.MatrixOps) + res.MatrixOps*16
	if res.Queries != want {
		t.Fatalf("Queries = %d, want %d (%d ops, %d matrix)", res.Queries, want, res.Ops, res.MatrixOps)
	}
	if math.IsNaN(res.QueryP50) || res.QueryP50 <= 0 {
		t.Fatalf("query p50 = %v, want positive", res.QueryP50)
	}
	if res.Dropped != 0 {
		t.Fatalf("closed loop cannot drop arrivals, got %d", res.Dropped)
	}
}

func TestOpenLoopSmoke(t *testing.T) {
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:  []loadgen.Target{servedTarget(t)},
		Workers:  4,
		Rate:     200,
		Duration: 500 * time.Millisecond,
		Span:     10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("open loop completed zero ops")
	}
	if res.Errors != 0 {
		t.Fatalf("healthy plane produced %d errors: %v", res.Errors, res)
	}
	// At 200 q/s for 0.5s the plane is far from saturated: the op rate
	// must track the offered rate, not the plane's capacity ceiling.
	if res.OpRate > 400 {
		t.Fatalf("open loop overshot the offered rate: %.0f ops/s for rate 200", res.OpRate)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := loadgen.Run(context.Background(), loadgen.Config{}); err == nil {
		t.Fatal("no targets accepted")
	}
	if _, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:    []loadgen.Target{servedTarget(t)},
		MatrixFrac: 1.5,
	}); err == nil {
		t.Fatal("MatrixFrac 1.5 accepted")
	}
}
