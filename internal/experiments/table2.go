package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/traffic"
)

// BlastRate is the interfering load between m-6 and m-8 (§8.2: "a
// synthetic program that generates significant traffic").
const BlastRate = 90e6

// startInterferingTraffic launches the Table 2 load: bidirectional
// non-responsive traffic between m-6 and m-8.
func startInterferingTraffic(e *Env) *traffic.Scenario {
	s := traffic.NewScenario("m-6 <-> m-8")
	s.Add(traffic.Blast(e.Net, "m-6", "m-8", BlastRate))
	s.Add(traffic.Blast(e.Net, "m-8", "m-6", BlastRate))
	return s
}

// Table2Row is one row of Table 2: node selection with external traffic.
type Table2Row struct {
	Program string
	Nodes   int

	// Dynamic: Remos selection using live measurements (sees traffic).
	DynamicSet  []graph.NodeID
	DynamicTime float64

	// Static: the node sets the paper's static-capacity-only selection
	// chose (Table 2, column 2) — they ignore traffic and collide with
	// it.
	StaticSet       []graph.NodeID
	StaticTime      float64
	PercentIncrease float64

	// CleanTime is the dynamic set's execution time without external
	// traffic (the paper's last column).
	CleanTime float64
}

// table2StaticSets are the "nodes selected with only static
// measurements" reported in the paper's Table 2.
var table2StaticSets = map[string][]graph.NodeID{
	"FFT (512)/2": {"m-4", "m-6"},
	"FFT (512)/4": {"m-4", "m-5", "m-6", "m-7"},
	"FFT (1K)/2":  {"m-4", "m-6"},
	"FFT (1K)/4":  {"m-4", "m-5", "m-6", "m-7"},
	"Airshed/3":   {"m-4", "m-5", "m-6"},
	"Airshed/5":   {"m-4", "m-5", "m-6", "m-7", "m-8"},
}

// Table2 reproduces Table 2: node selection in a dynamic environment
// with competing traffic between m-6 and m-8.
func Table2() []Table2Row {
	var out []Table2Row
	for _, w := range tableWorkloads() {
		// Dynamic selection happens on a testbed that already carries
		// the traffic, using measured history.
		sel := NewEnv()
		startInterferingTraffic(sel)
		sel.Warmup()
		dyn, err := selectNodes(sel, w.Nodes, core.TFHistory(10))
		if err != nil {
			panic(fmt.Sprintf("experiments: table2 selection: %v", err))
		}
		static := table2StaticSets[rowKey(w)]
		row := Table2Row{
			Program:    w.Name,
			Nodes:      w.Nodes,
			DynamicSet: dyn,
			StaticSet:  static,
		}
		row.DynamicTime = runOnce(w, dyn, func(e *Env) { startInterferingTraffic(e) })
		row.StaticTime = runOnce(w, static, func(e *Env) { startInterferingTraffic(e) })
		row.PercentIncrease = 100 * (row.StaticTime - row.DynamicTime) / row.DynamicTime
		row.CleanTime = runOnce(w, dyn, nil)
		out = append(out, row)
	}
	return out
}

// FormatTable2 renders the rows in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Node selection with external traffic between m-6 and m-8\n")
	fmt.Fprintf(&b, "%-10s %-3s | %-22s %8s | %-22s %8s %6s | %10s\n",
		"Program", "N", "Remos dynamic set", "time(s)", "static-only set", "time(s)", "+%", "no-traffic")
	b.WriteString(strings.Repeat("-", 110) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-3d | %-22s %8.3f | %-22s %8.3f %6.0f | %10.3f\n",
			r.Program, r.Nodes, nodeSet(r.DynamicSet), r.DynamicTime,
			nodeSet(r.StaticSet), r.StaticTime, r.PercentIncrease, r.CleanTime)
	}
	return b.String()
}
