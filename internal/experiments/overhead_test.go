package experiments

import (
	"strings"
	"testing"
)

func TestOverheadStudyShape(t *testing.T) {
	t.Parallel()
	rs := OverheadStudy()
	if len(rs) != 5 {
		t.Fatalf("rows = %d", len(rs))
	}
	for i, r := range rs {
		if r.DetectionDelay < 0 {
			t.Fatalf("period %v never detected the traffic", r.PollPeriod)
		}
		// Detection happens within ~1.5 poll periods.
		if r.DetectionDelay > 1.5*r.PollPeriod+0.5 {
			t.Fatalf("period %v: detection %v too slow", r.PollPeriod, r.DetectionDelay)
		}
		if i > 0 {
			// Monitoring cost falls as the period grows …
			if rs[i].SNMPRequestsPerMinute >= rs[i-1].SNMPRequestsPerMinute {
				t.Fatalf("requests not decreasing: %v", rs)
			}
			// … and detection slows.
			if rs[i].DetectionDelay < rs[i-1].DetectionDelay {
				t.Fatalf("detection not monotone: %v", rs)
			}
		}
	}
	// Cost scales ~linearly with frequency: 0.5 s polls cost ~20x the
	// 10 s polls.
	ratio := rs[0].SNMPRequestsPerMinute / rs[4].SNMPRequestsPerMinute
	if ratio < 15 || ratio > 25 {
		t.Fatalf("cost ratio = %v, want ~20", ratio)
	}
	if !strings.Contains(FormatOverheadStudy(rs), "detection delay") {
		t.Fatal("format wrong")
	}
}
