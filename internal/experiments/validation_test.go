package experiments

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// These tests close the loop on the whole system: what the Modeler
// *predicts* for a flow (remos_flow_info over SNMP-measured state) must
// match what the simulated network *actually delivers* when the flow
// starts. This is the strongest internal-consistency check the
// reproduction has: it exercises simulator -> counters -> SNMP ->
// collector -> modeler -> max-min prediction end to end.

// achievedRate starts a persistent elastic flow, lets the allocation
// settle, reads its rate, and stops it.
func achievedRate(e *Env, src, dst graph.NodeID) float64 {
	f := e.Net.StartFlow(netsim.FlowSpec{Src: src, Dst: dst, Owner: "probe"})
	rate := f.Rate()
	e.Net.StopFlow(f.ID)
	return rate
}

func TestPredictionMatchesSimulatorUnderCBR(t *testing.T) {
	t.Parallel()
	e := NewEnv()
	// Rate-capped background that is not bottlenecked elsewhere: the
	// modeler's "background keeps its rate" assumption holds exactly.
	traffic.Blast(e.Net, "m-6", "m-8", 35e6)
	traffic.Blast(e.Net, "m-5", "m-7", 25e6)
	e.Clk.Advance(30)

	cases := [][2]graph.NodeID{
		{"m-4", "m-7"}, // crosses both loaded links
		{"m-1", "m-8"}, // crosses t->w
		{"m-1", "m-2"}, // clean
		{"m-4", "m-5"}, // clean
	}
	for _, c := range cases {
		fi, err := e.Mod.QueryFlowInfo(nil, nil,
			[]core.Flow{{Src: c[0], Dst: c[1], Kind: core.IndependentFlow}}, core.TFHistory(20))
		if err != nil {
			t.Fatal(err)
		}
		predicted := fi.Independent[0].Bandwidth.Median
		actual := achievedRate(e, c[0], c[1])
		if math.Abs(predicted-actual) > 0.02*actual {
			t.Errorf("%s->%s: predicted %.1f Mbps, simulator delivered %.1f Mbps",
				c[0], c[1], predicted/1e6, actual/1e6)
		}
	}
}

func TestSimultaneousPredictionMatchesSimulator(t *testing.T) {
	t.Parallel()
	e := NewEnv()
	traffic.Blast(e.Net, "m-6", "m-8", 40e6)
	e.Clk.Advance(30)

	// Three application flows, two sharing the loaded link.
	flows := []core.Flow{
		{Src: "m-4", Dst: "m-7", Kind: core.IndependentFlow},
		{Src: "m-5", Dst: "m-8", Kind: core.IndependentFlow},
		{Src: "m-1", Dst: "m-2", Kind: core.IndependentFlow},
	}
	fi, err := e.Mod.QueryFlowInfo(nil, nil, flows, core.TFHistory(20))
	if err != nil {
		t.Fatal(err)
	}
	// Now actually start all three and compare each rate.
	var live []*netsim.Flow
	for _, f := range flows {
		live = append(live, e.Net.StartFlow(netsim.FlowSpec{Src: f.Src, Dst: f.Dst, Owner: "app"}))
	}
	for i, f := range live {
		predicted := fi.Independent[i].Bandwidth.Median
		if math.Abs(predicted-f.Rate()) > 0.02*f.Rate() {
			t.Errorf("flow %d %s->%s: predicted %.1f, got %.1f Mbps",
				i, f.Spec.Src, f.Spec.Dst, predicted/1e6, f.Rate()/1e6)
		}
	}
	for _, f := range live {
		e.Net.StopFlow(f.ID)
	}
}

func TestFixedFlowAdmissionMatchesSimulator(t *testing.T) {
	t.Parallel()
	e := NewEnv()
	traffic.Blast(e.Net, "m-6", "m-8", 80e6)
	e.Clk.Advance(30)

	// A fixed 15 Mbps request across the 20 Mbps-leftover link: the
	// modeler says satisfiable; a 25 Mbps request is not.
	ok, err := e.Mod.QueryFlowInfo(
		[]core.Flow{{Src: "m-4", Dst: "m-7", Kind: core.FixedFlow, Bandwidth: 15e6}},
		nil, nil, core.TFHistory(20))
	if err != nil {
		t.Fatal(err)
	}
	if !ok.Fixed[0].Satisfied {
		t.Fatalf("15 Mbps should fit in 20 Mbps leftover: %+v", ok.Fixed[0])
	}
	bad, err := e.Mod.QueryFlowInfo(
		[]core.Flow{{Src: "m-4", Dst: "m-7", Kind: core.FixedFlow, Bandwidth: 25e6}},
		nil, nil, core.TFHistory(20))
	if err != nil {
		t.Fatal(err)
	}
	if bad.Fixed[0].Satisfied {
		t.Fatalf("25 Mbps should not fit: %+v", bad.Fixed[0])
	}
	// The simulator agrees: a 15 Mbps CBR achieves its rate.
	f := e.Net.StartFlow(netsim.FlowSpec{Src: "m-4", Dst: "m-7", RateCap: 15e6})
	if math.Abs(f.Rate()-15e6) > 1e4 {
		t.Fatalf("CBR achieved %v", f.Rate())
	}
	e.Net.StopFlow(f.ID)
}

// Property: on random CBR backgrounds, single-flow predictions track the
// simulator within a small tolerance.
func TestRandomBackgroundPredictionProperty(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(31))
	hosts := topology.TestbedHosts
	for trial := 0; trial < 10; trial++ {
		e := NewEnv()
		// 1-3 random CBR flows, rates low enough that none saturates a
		// link alone (so none is bottleneck-limited below its cap).
		nBg := 1 + rng.Intn(3)
		for i := 0; i < nBg; i++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			if src == dst {
				continue
			}
			traffic.Blast(e.Net, src, dst, 5e6+rng.Float64()*25e6)
		}
		e.Clk.Advance(30)
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[(rng.Intn(len(hosts)-1)+1+indexOfHost(hosts, src))%len(hosts)]
		if src == dst {
			continue
		}
		fi, err := e.Mod.QueryFlowInfo(nil, nil,
			[]core.Flow{{Src: src, Dst: dst, Kind: core.IndependentFlow}}, core.TFHistory(20))
		if err != nil {
			t.Fatal(err)
		}
		predicted := fi.Independent[0].Bandwidth.Median
		actual := achievedRate(e, src, dst)
		if math.Abs(predicted-actual) > 0.05*actual+1e5 {
			t.Fatalf("trial %d %s->%s: predicted %.2f, actual %.2f Mbps",
				trial, src, dst, predicted/1e6, actual/1e6)
		}
	}
}

func indexOfHost(hosts []graph.NodeID, h graph.NodeID) int {
	for i, x := range hosts {
		if x == h {
			return i
		}
	}
	return 0
}

// TestSimulatorIsMaxMinFairLive cross-validates the simulator against
// the fairness checker while a busy mix of flows runs.
func TestSimulatorIsMaxMinFairLive(t *testing.T) {
	t.Parallel()
	e := NewEnv()
	traffic.Blast(e.Net, "m-6", "m-8", 50e6)
	var live []*netsim.Flow
	pairs := [][2]graph.NodeID{{"m-1", "m-7"}, {"m-2", "m-8"}, {"m-4", "m-5"}, {"m-3", "m-6"}}
	for _, p := range pairs {
		live = append(live, e.Net.StartFlow(netsim.FlowSpec{Src: p[0], Dst: p[1]}))
	}
	e.Clk.Advance(1)
	e.Net.Sync()
	// Elastic flows sharing a saturated resource must have equal rates
	// unless bottlenecked elsewhere; spot-check the two crossing t->w.
	r1, r2 := live[0].Rate(), live[1].Rate()
	if math.Abs(r1-r2) > 1e3 {
		t.Fatalf("flows sharing t->w got %v and %v", r1, r2)
	}
	// Rates are conserved: total through t->w = capacity - headroom-free
	// blast.
	ch := channelBetween(t, e, "timberline", "whiteface")
	total := e.Net.ChannelRate(ch, "")
	if math.Abs(total-100e6) > 1e4 {
		t.Fatalf("t->w total rate = %v, want saturated 100e6", total)
	}
	if err := e.Net.CheckConservation(1e-6); err != nil {
		t.Fatal(err)
	}
}

func channelBetween(t *testing.T, e *Env, from, to graph.NodeID) graph.Channel {
	t.Helper()
	for _, l := range e.Net.Graph().Links() {
		if (l.A == from && l.B == to) || (l.A == to && l.B == from) {
			return graph.Channel{Link: l.ID, Dir: l.DirFrom(from)}
		}
	}
	t.Fatalf("no link %s--%s", from, to)
	return graph.Channel{}
}
