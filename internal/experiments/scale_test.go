package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

// checkScaleResult asserts the invariants every study size must hold.
func checkScaleResult(t *testing.T, r ScaleResult) {
	t.Helper()
	if r.Regions != 3 {
		t.Fatalf("n=%d: regions = %d", r.Nodes, r.Regions)
	}
	// The federated view holds every host (local full fidelity plus
	// remote hosts from summaries) and one hub per remote region, but
	// summarizes away the remote interiors — so it sits strictly
	// between the host count and the full generated size.
	if r.MergedNodes <= r.Hosts+r.Regions-1 {
		t.Fatalf("n=%d: view nodes = %d with %d hosts — remote structure missing",
			r.Nodes, r.MergedNodes, r.Hosts)
	}
	if r.MergedNodes >= r.Nodes+r.Regions {
		t.Fatalf("n=%d: view nodes = %d — remote interiors were not summarized away",
			r.Nodes, r.MergedNodes)
	}
	if r.PollsPerCollector < 5 {
		t.Fatalf("n=%d: polls = %d", r.Nodes, r.PollsPerCollector)
	}
	// Unloaded estate: both query classes answer with real bandwidth.
	if r.IntraMbps <= 0 || r.CrossMbps <= 0 {
		t.Fatalf("n=%d: intra = %v Mbps, cross = %v Mbps", r.Nodes, r.IntraMbps, r.CrossMbps)
	}
}

func TestScaleStudyShape(t *testing.T) {
	t.Parallel()
	r := ScaleStudyAt(100)
	checkScaleResult(t, r)
	if !strings.Contains(FormatScaleStudy([]ScaleResult{r}), "regions") {
		t.Fatal("format wrong")
	}
}

// TestScaleStudyThousandNodes runs the middle study size — the 3-region
// × 1k-node federation of the acceptance criteria — end to end.
func TestScaleStudyThousandNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-node federation study in -short mode")
	}
	t.Parallel()
	checkScaleResult(t, ScaleStudyAt(1000))
}

func TestScaleCrossDomainSeesTraffic(t *testing.T) {
	t.Parallel()
	e := NewScaleEnv(24, 4)
	// Load the rt1--rt2 backbone segment with traffic between hosts in
	// domains 1 and 2.
	traffic.Blast(e.Net, "h1", "h2", 70e6)
	e.Clk.Advance(20)
	// h5 (domain 1) to h6 (domain 2) crosses the loaded segment; the
	// measurement comes from two different collectors via the merge.
	st, err := e.Mod.AvailableBandwidth("h5", "h6", core.TFHistory(15))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Median-30e6) > 1e5 {
		t.Fatalf("cross-domain availability = %v, want ~30 Mbps", st)
	}
	// A pair away from the traffic is clean.
	st2, err := e.Mod.AvailableBandwidth("h3", "h7", core.TFHistory(15))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st2.Median-100e6) > 1e5 {
		t.Fatalf("clean pair = %v", st2)
	}
}

func TestScaleNodeSelectionAcrossDomains(t *testing.T) {
	t.Parallel()
	e := NewScaleEnv(24, 4)
	// Load everything near rt3 by blasting its hosts.
	traffic.Blast(e.Net, "h3", "h7", 90e6)
	traffic.Blast(e.Net, "h7", "h3", 90e6)
	e.Clk.Advance(20)
	bw, err := e.Mod.BandwidthMatrix(e.Hosts[:12], core.TFHistory(15))
	if err != nil {
		t.Fatal(err)
	}
	// Matrix entries for pairs touching h3/h7 show the load.
	idx := map[string]int{}
	for i, h := range e.Hosts[:12] {
		idx[string(h)] = i
	}
	if got := bw[idx["h0"]][idx["h3"]]; got > 20e6 {
		t.Fatalf("h0->h3 = %v, should be crushed", got)
	}
	if got := bw[idx["h0"]][idx["h4"]]; math.Abs(got-100e6) > 1e5 {
		t.Fatalf("h0->h4 = %v, should be clean", got)
	}
}
