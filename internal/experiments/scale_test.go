package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

func TestScaleStudyShape(t *testing.T) {
	t.Parallel()
	rs := ScaleStudy()
	if len(rs) != 3 {
		t.Fatalf("rows = %d", len(rs))
	}
	for _, r := range rs {
		// Merged topology covers everything: hosts + routers nodes,
		// hosts + (routers-1) links.
		if r.MergedNodes != r.Hosts+r.Routers {
			t.Fatalf("%d/%d: merged nodes = %d", r.Hosts, r.Routers, r.MergedNodes)
		}
		if r.MergedLinks != r.Hosts+r.Routers-1 {
			t.Fatalf("%d/%d: merged links = %d", r.Hosts, r.Routers, r.MergedLinks)
		}
		if r.Collectors != r.Routers {
			t.Fatalf("collectors = %d", r.Collectors)
		}
		if r.PollsPerCollector < 5 {
			t.Fatalf("polls = %d", r.PollsPerCollector)
		}
		// Unloaded chain: full capacity end to end.
		if math.Abs(r.SampleQueryMbps-100) > 1 {
			t.Fatalf("cross-domain query = %v Mbps", r.SampleQueryMbps)
		}
	}
	if !strings.Contains(FormatScaleStudy(rs), "collectors") {
		t.Fatal("format wrong")
	}
}

func TestScaleCrossDomainSeesTraffic(t *testing.T) {
	t.Parallel()
	e := NewScaleEnv(24, 4)
	// Load the rt1--rt2 backbone segment with traffic between hosts in
	// domains 1 and 2.
	traffic.Blast(e.Net, "h1", "h2", 70e6)
	e.Clk.Advance(20)
	// h5 (domain 1) to h6 (domain 2) crosses the loaded segment; the
	// measurement comes from two different collectors via the merge.
	st, err := e.Mod.AvailableBandwidth("h5", "h6", core.TFHistory(15))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Median-30e6) > 1e5 {
		t.Fatalf("cross-domain availability = %v, want ~30 Mbps", st)
	}
	// A pair away from the traffic is clean.
	st2, err := e.Mod.AvailableBandwidth("h3", "h7", core.TFHistory(15))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st2.Median-100e6) > 1e5 {
		t.Fatalf("clean pair = %v", st2)
	}
}

func TestScaleNodeSelectionAcrossDomains(t *testing.T) {
	t.Parallel()
	e := NewScaleEnv(24, 4)
	// Load everything near rt3 by blasting its hosts.
	traffic.Blast(e.Net, "h3", "h7", 90e6)
	traffic.Blast(e.Net, "h7", "h3", 90e6)
	e.Clk.Advance(20)
	bw, err := e.Mod.BandwidthMatrix(e.Hosts[:12], core.TFHistory(15))
	if err != nil {
		t.Fatal(err)
	}
	// Matrix entries for pairs touching h3/h7 show the load.
	idx := map[string]int{}
	for i, h := range e.Hosts[:12] {
		idx[string(h)] = i
	}
	if got := bw[idx["h0"]][idx["h3"]]; got > 20e6 {
		t.Fatalf("h0->h3 = %v, should be crushed", got)
	}
	if got := bw[idx["h0"]][idx["h4"]]; math.Abs(got-100e6) > 1e5 {
		t.Fatalf("h0->h4 = %v, should be clean", got)
	}
}
