// Package experiments wires the full Remos stack — simulated testbed,
// SNMP agents, collector, modeler, clustering, Fx runtime, applications,
// traffic generators — into the experiments of the paper's §8, and
// regenerates every table and figure. See EXPERIMENTS.md for the
// paper-vs-measured record.
package experiments

import (
	"fmt"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/fx"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topology"
)

// Env is one fully wired testbed instance. Every experiment run uses a
// fresh Env so runs are independent and deterministic.
type Env struct {
	Clk *simclock.Clock
	Net *netsim.Network
	Col *collector.Collector
	Mod *core.Modeler
}

// NewEnv builds the standard environment over the Figure 3 testbed.
func NewEnv() *Env {
	return NewEnvOn(topology.Testbed())
}

// NewEnvOn builds an environment over an arbitrary topology.
func NewEnvOn(g *graph.Graph) *Env {
	clk := simclock.New()
	n, err := netsim.New(clk, g)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := collector.New(collector.Config{
		Client:        snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:         clk,
		Addrs:         addrs,
		PollPeriod:    2,
		PerHopLatency: topology.PerHopLatency,
	})
	if err := col.Start(); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return &Env{Clk: clk, Net: n, Col: col, Mod: core.New(core.Config{Source: col})}
}

// Warmup advances virtual time so the collector accumulates measurement
// history (15 s covers seven poll rounds).
func (e *Env) Warmup() { e.Clk.Advance(15) }

// RunProgram executes a program on the given nodes with the runtime
// configuration and returns its report. The collector and any traffic
// generators keep running during execution.
func (e *Env) RunProgram(p *fx.Program, nodes []graph.NodeID, configure func(*fx.Runtime)) *fx.Report {
	rt := &fx.Runtime{Net: e.Net, Owner: "app"}
	if configure != nil {
		configure(rt)
	}
	return rt.RunToCompletion(p, nodes)
}
