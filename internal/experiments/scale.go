package experiments

import (
	"fmt"
	"strings"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topology"
)

// The scale study exercises the paper's closing concern: "we are also
// looking into the problem of dealing with very large networks, where
// multiple collectors will have to collaborate to collect the network
// information." A router chain with many hosts is split into per-router
// collector domains; the merged source must behave exactly like a single
// global collector, while each collector polls only its share.

// ScaleEnv is a large simulated network with partitioned collectors.
type ScaleEnv struct {
	Clk        *simclock.Clock
	Net        *netsim.Network
	Collectors []*collector.Collector
	Merged     *collector.Merged
	Mod        *core.Modeler
	Hosts      []graph.NodeID
}

// NewScaleEnv builds `hosts` hosts over `routers` chained routers with
// one collector per router domain (the router plus its attached hosts).
func NewScaleEnv(hosts, routers int) *ScaleEnv {
	g := topology.RouterChain(hosts, routers, 100)
	clk := simclock.New()
	n, err := netsim.New(clk, g)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	client := snmp.NewClient(att.Registry, snmp.DefaultCommunity)

	// Partition: router rtI owns hosts h with h%routers == I.
	domains := make([]map[graph.NodeID]string, routers)
	for i := range domains {
		domains[i] = make(map[graph.NodeID]string)
		rt := graph.NodeID(fmt.Sprintf("rt%d", i))
		domains[i][rt] = snmp.Addr(rt)
	}
	for h := 0; h < hosts; h++ {
		id := graph.NodeID(fmt.Sprintf("h%d", h))
		domains[h%routers][id] = snmp.Addr(id)
	}

	env := &ScaleEnv{Clk: clk, Net: n, Hosts: g.ComputeNodes()}
	var sources []collector.Source
	for i := range domains {
		col := collector.New(collector.Config{
			Client:        client,
			Clock:         clk,
			Addrs:         domains[i],
			PollPeriod:    2,
			PerHopLatency: topology.PerHopLatency,
		})
		if err := col.Start(); err != nil {
			panic(fmt.Sprintf("experiments: domain %d: %v", i, err))
		}
		env.Collectors = append(env.Collectors, col)
		sources = append(sources, col)
	}
	env.Merged = collector.Merge(sources...)
	env.Mod = core.New(core.Config{Source: env.Merged})
	return env
}

// ScaleResult summarizes one configuration of the study.
type ScaleResult struct {
	Hosts, Routers, Collectors int
	MergedNodes, MergedLinks   int
	PollsPerCollector          uint64
	// SampleQueryOK verifies a cross-domain availability query answered
	// through the merge.
	SampleQueryMbps float64
}

// ScaleStudy runs the merge across three sizes and verifies cross-domain
// queries.
func ScaleStudy() []ScaleResult {
	var out []ScaleResult
	for _, cfg := range []struct{ hosts, routers int }{
		{8, 2}, {24, 4}, {64, 8},
	} {
		e := NewScaleEnv(cfg.hosts, cfg.routers)
		e.Clk.Advance(15)
		topo, err := e.Merged.Topology()
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		// Cross-domain pair: first and last host live in different
		// domains by construction.
		st, err := e.Mod.AvailableBandwidth(e.Hosts[0], e.Hosts[len(e.Hosts)-1], core.TFHistory(10))
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		var minPolls uint64 = ^uint64(0)
		for _, c := range e.Collectors {
			if p := c.Polls(); p < minPolls {
				minPolls = p
			}
		}
		out = append(out, ScaleResult{
			Hosts: cfg.hosts, Routers: cfg.routers, Collectors: len(e.Collectors),
			MergedNodes: topo.Graph.NumNodes(), MergedLinks: topo.Graph.NumLinks(),
			PollsPerCollector: minPolls,
			SampleQueryMbps:   st.Median / 1e6,
		})
	}
	return out
}

// FormatScaleStudy renders the study.
func FormatScaleStudy(rs []ScaleResult) string {
	var b strings.Builder
	b.WriteString("Scale study: cooperating collectors over a router chain\n")
	fmt.Fprintf(&b, "%6s %8s %11s | %12s %12s | %8s | %14s\n",
		"hosts", "routers", "collectors", "merged nodes", "merged links", "polls", "x-domain Mbps")
	b.WriteString(strings.Repeat("-", 96) + "\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "%6d %8d %11d | %12d %12d | %8d | %14.1f\n",
			r.Hosts, r.Routers, r.Collectors, r.MergedNodes, r.MergedLinks,
			r.PollsPerCollector, r.SampleQueryMbps)
	}
	return b.String()
}
