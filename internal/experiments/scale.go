package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topogen"
	"repro/internal/topology"
)

// The scale study exercises the paper's closing concern: "we are also
// looking into the problem of dealing with very large networks, where
// multiple collectors will have to collaborate to collect the network
// information." ScaleStudy runs generated topologies (internal/topogen)
// at 100/1k/5k nodes under federated regional collection: one collector
// per region, one federation.View composing the partials. ScaleEnv
// below is the older, smaller harness — a router chain split into
// per-router collector domains under one flat merge — kept because its
// cross-domain traffic tests pin the merge's measurement routing.

// ScaleEnv is a large simulated network with partitioned collectors.
type ScaleEnv struct {
	Clk        *simclock.Clock
	Net        *netsim.Network
	Collectors []*collector.Collector
	Merged     *collector.Merged
	Mod        *core.Modeler
	Hosts      []graph.NodeID
}

// NewScaleEnv builds `hosts` hosts over `routers` chained routers with
// one collector per router domain (the router plus its attached hosts).
func NewScaleEnv(hosts, routers int) *ScaleEnv {
	g := topology.RouterChain(hosts, routers, 100)
	clk := simclock.New()
	n, err := netsim.New(clk, g)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	client := snmp.NewClient(att.Registry, snmp.DefaultCommunity)

	// Partition: router rtI owns hosts h with h%routers == I.
	domains := make([]map[graph.NodeID]string, routers)
	for i := range domains {
		domains[i] = make(map[graph.NodeID]string)
		rt := graph.NodeID(fmt.Sprintf("rt%d", i))
		domains[i][rt] = snmp.Addr(rt)
	}
	for h := 0; h < hosts; h++ {
		id := graph.NodeID(fmt.Sprintf("h%d", h))
		domains[h%routers][id] = snmp.Addr(id)
	}

	env := &ScaleEnv{Clk: clk, Net: n, Hosts: g.ComputeNodes()}
	var sources []collector.Source
	for i := range domains {
		col := collector.New(collector.Config{
			Client:        client,
			Clock:         clk,
			Addrs:         domains[i],
			PollPeriod:    2,
			PerHopLatency: topology.PerHopLatency,
		})
		if err := col.Start(); err != nil {
			panic(fmt.Sprintf("experiments: domain %d: %v", i, err))
		}
		env.Collectors = append(env.Collectors, col)
		sources = append(sources, col)
	}
	env.Merged = collector.Merge(sources...)
	env.Mod = core.New(core.Config{Source: env.Merged})
	return env
}

// ScaleResult summarizes one configuration of the study.
type ScaleResult struct {
	// Nodes is the requested size; MergedNodes/MergedLinks measure the
	// federated view (generated nodes plus nothing extra — hubs stand in
	// only for regions the local view does not own, and here the query
	// runs against region r0's view which summarizes the other two).
	Nodes, Hosts, Regions    int
	MergedNodes, MergedLinks int
	PollsPerCollector        uint64
	// Wall-clock costs of the three phases ISSUE benchmarks gate:
	// building the environment (generation + discovery + first poll),
	// one warmed-up span of poll rounds, and a federated merge read.
	BuildMS, PollMS, MergeMS float64
	// Intra answers at full fidelity inside r0; Cross traverses the
	// summarized links into r2.
	IntraMbps, CrossMbps float64
}

// scaleSpec pins the study topology: hierarchical interior + edges, 3
// regions, fixed seed — every run sees the identical network.
func scaleSpec(n int) topogen.Spec {
	return topogen.Spec{Kind: topogen.KindHier, N: n, Seed: 11, Regions: 3}
}

// ScaleStudyAt runs one size of the federated scale study: three
// regional collectors over a generated n-node topology, composed by one
// federation view, answering intra- and cross-region queries.
func ScaleStudyAt(n int) ScaleResult {
	t0 := time.Now()
	e := NewFederationEnv(scaleSpec(n))
	build := time.Since(t0)
	t1 := time.Now()
	e.Warmup()
	poll := time.Since(t1)
	t2 := time.Now()
	topo, err := e.Views[0].Topology()
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	merge := time.Since(t2)

	r0 := e.Topo.Hosts(e.Topo.Regions[0])
	r2 := e.Topo.Hosts(e.Topo.Regions[2])
	mod := e.Mods[0]
	intra, err := mod.AvailableBandwidth(r0[0], r0[len(r0)-1], core.TFHistory(10))
	if err != nil {
		panic(fmt.Sprintf("experiments: intra: %v", err))
	}
	cross, err := mod.AvailableBandwidth(r0[0], r2[0], core.TFHistory(10))
	if err != nil {
		panic(fmt.Sprintf("experiments: cross: %v", err))
	}
	var minPolls uint64 = ^uint64(0)
	hosts := 0
	for i, c := range e.Collectors {
		if p := c.Polls(); p < minPolls {
			minPolls = p
		}
		hosts += len(e.Topo.Hosts(e.Topo.Regions[i]))
	}
	return ScaleResult{
		Nodes: n, Hosts: hosts, Regions: len(e.Regions),
		MergedNodes: topo.Graph.NumNodes(), MergedLinks: topo.Graph.NumLinks(),
		PollsPerCollector: minPolls,
		BuildMS:           float64(build.Milliseconds()),
		PollMS:            float64(poll.Milliseconds()),
		MergeMS:           float64(merge.Milliseconds()),
		IntraMbps:         intra.Median / 1e6,
		CrossMbps:         cross.Median / 1e6,
	}
}

// ScaleStudySizes are the paper-scale points the study and its
// benchmark sweep: two orders of magnitude up to planet-ish scale.
var ScaleStudySizes = []int{100, 1000, 5000}

// ScaleStudy runs the federated study across the standard sizes.
func ScaleStudy() []ScaleResult {
	var out []ScaleResult
	for _, n := range ScaleStudySizes {
		out = append(out, ScaleStudyAt(n))
	}
	return out
}

// FormatScaleStudy renders the study.
func FormatScaleStudy(rs []ScaleResult) string {
	var b strings.Builder
	b.WriteString("Scale study: federated regional collectors over generated topologies\n")
	fmt.Fprintf(&b, "%6s %6s %8s | %6s %6s | %8s %8s %8s | %10s %10s\n",
		"nodes", "hosts", "regions", "vnodes", "vlinks", "build ms", "poll ms", "merge ms", "intra Mbps", "cross Mbps")
	b.WriteString(strings.Repeat("-", 100) + "\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "%6d %6d %8d | %6d %6d | %8.0f %8.0f %8.0f | %10.1f %10.1f\n",
			r.Nodes, r.Hosts, r.Regions, r.MergedNodes, r.MergedLinks,
			r.BuildMS, r.PollMS, r.MergeMS, r.IntraMbps, r.CrossMbps)
	}
	return b.String()
}
