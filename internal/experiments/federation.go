package experiments

import (
	"fmt"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topogen"
	"repro/internal/topology"
)

// FederationEnv is a generated multi-region network under federated
// collection: one collector per region polling only its members, one
// federation.View per region composing local detail with the other
// regions' summaries, and a Modeler per view. Everything shares one
// virtual clock, so runs are deterministic.
type FederationEnv struct {
	Clk        *simclock.Clock
	Net        *netsim.Network
	Topo       *topogen.Topology
	Collectors []*collector.Collector
	Regions    []*federation.Region
	Views      []*federation.View
	Mods       []*core.Modeler
}

// NewFederationEnv builds the federation over a generated topology.
func NewFederationEnv(spec topogen.Spec) *FederationEnv {
	tp, err := topogen.Generate(spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	clk := simclock.New()
	n, err := netsim.New(clk, tp.Graph)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	client := snmp.NewClient(att.Registry, snmp.DefaultCommunity)

	env := &FederationEnv{Clk: clk, Net: n, Topo: tp}
	for _, name := range tp.Regions {
		addrs := make(map[graph.NodeID]string)
		for _, id := range tp.Members(name) {
			addrs[id] = snmp.Addr(id)
		}
		col := collector.New(collector.Config{
			Client:        client,
			Clock:         clk,
			Addrs:         addrs,
			PollPeriod:    2,
			PerHopLatency: topology.PerHopLatency,
		})
		if err := col.Start(); err != nil {
			panic(fmt.Sprintf("experiments: region %s: %v", name, err))
		}
		env.Collectors = append(env.Collectors, col)
		env.Regions = append(env.Regions, &federation.Region{
			Name: name, Src: col, RegionOf: tp.RegionOf, Clock: clk,
		})
	}
	for i := range env.Regions {
		var peers []federation.Peer
		for j := range env.Regions {
			if j != i {
				peers = append(peers, federation.SourcePeer(env.Regions[j]))
			}
		}
		v := federation.NewView(federation.Config{Region: env.Regions[i], Peers: peers, Clock: clk})
		env.Views = append(env.Views, v)
		env.Mods = append(env.Mods, core.New(core.Config{Source: v}))
	}
	return env
}

// Warmup advances virtual time so every regional collector accumulates
// measurement history (15 s covers seven poll rounds).
func (e *FederationEnv) Warmup() { e.Clk.Advance(15) }
