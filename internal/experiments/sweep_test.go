package experiments

import (
	"strings"
	"testing"
)

func TestNodeCountSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("28 full runs")
	}
	t.Parallel()
	rows := NodeCountSweep()
	if len(rows) != 14 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]map[int]SweepRow{}
	for _, r := range rows {
		if byKey[r.Program] == nil {
			byKey[r.Program] = map[int]SweepRow{}
		}
		byKey[r.Program][r.Nodes] = r
	}
	for prog, m := range byKey {
		// Clean runs speed up monotonically: the testbed's network is
		// fast enough that communication never dominates up to 8 nodes.
		for n := 3; n <= 8; n++ {
			if m[n].CleanTime >= m[n-1].CleanTime {
				t.Fatalf("%s: clean time not improving at %d nodes (%v vs %v)",
					prog, n, m[n].CleanTime, m[n-1].CleanTime)
			}
		}
		// Under interfering traffic the crossover appears: 5 Remos-
		// selected nodes (all on the quiet side) beat 6 (which must
		// include a traffic-side host) — the §2 motivation.
		if m[5].BusyTime >= m[6].BusyTime {
			t.Fatalf("%s: no crossover: 5 nodes %v vs 6 nodes %v",
				prog, m[5].BusyTime, m[6].BusyTime)
		}
		// And at 5 nodes traffic costs almost nothing (selection avoids
		// it), while at 8 it is unavoidable.
		if m[5].BusyTime > m[5].CleanTime*1.1 {
			t.Fatalf("%s: 5-node selection did not avoid traffic: %v vs %v",
				prog, m[5].BusyTime, m[5].CleanTime)
		}
		if m[8].BusyTime < m[8].CleanTime*1.5 {
			t.Fatalf("%s: 8-node run unexpectedly unaffected: %v vs %v",
				prog, m[8].BusyTime, m[8].CleanTime)
		}
	}
	if !strings.Contains(FormatSweep(rows), "speedup") {
		t.Fatal("format wrong")
	}
}
