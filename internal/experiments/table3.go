package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps/airshed"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fx"
	"repro/internal/graph"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Table 3 runs the adaptive Airshed: the program is compiled for 8 nodes
// but executes on 5, re-evaluating its mapping at every iteration and
// migrating when a better-connected node set exists.

// Table3FixedSet is the initial (and, for the fixed runs, permanent)
// mapping: the timberline/whiteface side, which interfering traffic hits.
var Table3FixedSet = []graph.NodeID{"m-4", "m-5", "m-6", "m-7", "m-8"}

// Adaptive-runtime calibration (see EXPERIMENTS.md):
const (
	// CompiledNodes/overheadAlpha model the cost of compiling for 8 and
	// running on 5 (paper: 862 s vs the plain build's 650 s).
	table3CompiledNodes = 8
	table3OverheadAlpha = 0.62

	// DecisionCost is one adaptation check (Remos queries+clustering);
	// MigrationCost is one executed re-mapping. Together they explain
	// the paper's 941-vs-862 s active-adaptation overhead.
	table3DecisionCost  = 2.5
	table3MigrationCost = 8
)

// Table3Scenario names one traffic pattern of Table 3.
type Table3Scenario struct {
	Name  string
	Start func(e *Env) *traffic.Scenario // nil = no traffic
}

// Table3Scenarios reproduces the four columns of Table 3.
func Table3Scenarios() []Table3Scenario {
	return []Table3Scenario{
		{Name: "No Traffic", Start: nil},
		{Name: "Non-interfering", Start: func(e *Env) *traffic.Scenario {
			// Traffic confined to the aspen side: does not touch the
			// fixed set's communication.
			s := traffic.NewScenario("m-1 <-> m-3")
			s.Add(traffic.Blast(e.Net, "m-1", "m-3", BlastRate))
			s.Add(traffic.Blast(e.Net, "m-3", "m-1", BlastRate))
			return s
		}},
		{Name: "Interfering-1", Start: func(e *Env) *traffic.Scenario {
			s := traffic.NewScenario("m-6 <-> m-8")
			s.Add(traffic.Blast(e.Net, "m-6", "m-8", BlastRate))
			s.Add(traffic.Blast(e.Net, "m-8", "m-6", BlastRate))
			return s
		}},
		{Name: "Interfering-2", Start: func(e *Env) *traffic.Scenario {
			// Heavier pattern: both whiteface hosts are traffic
			// endpoints and the two streams sharing m-6's access link
			// sum to 92 Mbps (vs Table 2's 90), so the fixed mapping
			// suffers a little more than under Interfering-1, as in the
			// paper's Table 3.
			const half = 46e6
			s := traffic.NewScenario("m-6 <-> m-7, m-6 <-> m-8")
			s.Add(traffic.Blast(e.Net, "m-6", "m-7", half))
			s.Add(traffic.Blast(e.Net, "m-7", "m-6", half))
			s.Add(traffic.Blast(e.Net, "m-6", "m-8", half))
			s.Add(traffic.Blast(e.Net, "m-8", "m-6", half))
			return s
		}},
	}
}

// Table3Row is one traffic scenario's fixed-vs-adaptive comparison.
type Table3Row struct {
	Scenario     string
	FixedTime    float64
	AdaptiveTime float64
	Migrations   int
	FinalNodes   []graph.NodeID
}

// runTable3 executes the Airshed program under one scenario.
func runTable3(sc Table3Scenario, adaptive bool) (float64, int, []graph.NodeID) {
	e := NewEnv()
	if sc.Start != nil {
		sc.Start(e)
	}
	e.Warmup()
	prog := airshed.Program(airshed.DefaultParams())
	rep := e.RunProgram(prog, Table3FixedSet, func(rt *fx.Runtime) {
		rt.CompiledNodes = table3CompiledNodes
		rt.OverheadAlpha = table3OverheadAlpha
		if adaptive {
			rt.MigrationCost = table3MigrationCost
			rt.Adapter = &fx.RemosAdapter{
				Modeler:      e.Mod,
				Pool:         topology.TestbedHosts,
				Start:        StartNode,
				Metric:       cluster.TestbedMetric(),
				Timeframe:    core.TFHistory(10),
				Threshold:    0, // paper: migrate on any positive improvement
				DecisionCost: table3DecisionCost,
			}
		}
	})
	return rep.Elapsed(), len(rep.Migrations), rep.Nodes
}

// Table3 reproduces Table 3: execution times of the adaptive Airshed on
// a fixed node set versus with runtime adaptation, under four traffic
// patterns.
func Table3() []Table3Row {
	var out []Table3Row
	for _, sc := range Table3Scenarios() {
		fixedTime, _, _ := runTable3(sc, false)
		adaptTime, migs, finalNodes := runTable3(sc, true)
		out = append(out, Table3Row{
			Scenario:     sc.Name,
			FixedTime:    fixedTime,
			AdaptiveTime: adaptTime,
			Migrations:   migs,
			FinalNodes:   finalNodes,
		})
	}
	return out
}

// FormatTable3 renders the rows in the paper's layout.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: Adaptive Airshed (compiled for 8 nodes, executing on 5)\n")
	fmt.Fprintf(&b, "%-16s | %10s | %10s | %5s | %-24s\n",
		"Traffic", "Fixed(s)", "Adaptive(s)", "migr", "final adaptive nodes")
	b.WriteString(strings.Repeat("-", 80) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s | %10.0f | %10.0f | %5d | %-24s\n",
			r.Scenario, r.FixedTime, r.AdaptiveTime, r.Migrations, nodeSet(r.FinalNodes))
	}
	return b.String()
}
