package experiments

import (
	"math"
	"testing"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/probe"
	"repro/internal/traffic"
)

// TestFigure2Architecture exercises the deployment of the paper's
// Figure 2: two applications (one with an in-process Modeler, one whose
// Modeler reaches the Collector over the TCP service), an SNMP-based
// Collector, and a benchmark-based collector (the Prober) — all serving
// consistent answers about the same network.
func TestFigure2Architecture(t *testing.T) {
	t.Parallel()
	e := NewEnv()
	traffic.Blast(e.Net, "m-6", "m-8", 60e6)
	e.Clk.Advance(30)

	// Application 1: in-process Modeler (already wired by Env).
	app1, err := e.Mod.AvailableBandwidth("m-4", "m-7", core.TFHistory(20))
	if err != nil {
		t.Fatal(err)
	}

	// Application 2: Modeler over the TCP query service.
	srv, err := collector.Serve(e.Col, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := collector.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	mod2 := core.New(core.Config{Source: cli})
	app2, err := mod2.AvailableBandwidth("m-4", "m-7", core.TFHistory(20))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(app1.Median-app2.Median) > 1e-9 {
		t.Fatalf("in-process (%v) and TCP (%v) Modelers disagree", app1.Median, app2.Median)
	}
	if math.Abs(app1.Median-40e6) > 1e5 {
		t.Fatalf("availability = %v, want ~40 Mbps", app1.Median)
	}

	// Collector flavor 2: benchmark probes measure the same condition
	// actively (Figure 2's second collector), within probe noise.
	pr := probe.New(e.Net)
	pr.ProbeBytes = 2e5
	pr.StartPeriodic("m-4", "m-7", 1.0)
	e.Clk.Advance(12)
	probed := pr.Bandwidth("m-4", "m-7", 100)
	if !probed.Valid() {
		t.Fatal("prober produced no data")
	}
	if math.Abs(probed.Median-40e6) > 2e6 {
		t.Fatalf("probe-based estimate = %v, SNMP-based = %v", probed.Median, app1.Median)
	}
}
