package experiments

import (
	"strings"
	"testing"
)

func TestPredictionStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-pattern study")
	}
	t.Parallel()
	evals := PredictionStudy()
	if len(evals) != 16 { // 4 patterns × 4 predictors
		t.Fatalf("cells = %d", len(evals))
	}
	get := func(pattern, predictor string) PredictorEval {
		for _, e := range evals {
			if e.Pattern == pattern && e.Predictor == predictor {
				return e
			}
		}
		t.Fatalf("missing cell %s/%s", pattern, predictor)
		return PredictorEval{}
	}
	// Steady traffic is perfectly predictable by everything.
	for _, p := range []string{"last-value", "moving-average", "ewma", "linear-trend"} {
		if e := get("steady", p); e.MAE > 0.2e6 {
			t.Fatalf("steady/%s MAE = %v", p, e.MAE)
		}
		if e := get("steady", p); e.N < 15 {
			t.Fatalf("steady/%s N = %d", p, e.N)
		}
	}
	// Bursty on-off traffic defeats point predictors — the paper's
	// motivation for reporting quartiles instead of single numbers.
	for _, p := range []string{"last-value", "ewma"} {
		if e := get("onoff", p); e.MAE < 5e6 {
			t.Fatalf("onoff/%s MAE = %v, suspiciously good", p, e.MAE)
		}
	}
	// Averaging beats last-value on Poisson transfer noise.
	if ma, lv := get("poisson", "moving-average"), get("poisson", "last-value"); ma.MAE >= lv.MAE {
		t.Fatalf("moving-average (%v) not better than last-value (%v) on poisson", ma.MAE, lv.MAE)
	}
	// Sanity bound everywhere.
	for _, e := range evals {
		if e.MAE < 0 || e.MAE > 100e6 {
			t.Fatalf("%s/%s MAE = %v", e.Pattern, e.Predictor, e.MAE)
		}
	}
	out := FormatPredictionStudy(evals)
	if !strings.Contains(out, "onoff") || !strings.Contains(out, "ewma") {
		t.Fatalf("format:\n%s", out)
	}
}
