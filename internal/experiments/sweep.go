package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps/fft"
	"repro/internal/core"
)

// The node-count sweep quantifies the §2 node-selection motivation:
// "many applications are developed so that they work with a variable
// number of nodes, but increasing the number of nodes may drive up
// communication costs". For FFT sizes on 2..8 hosts it measures
// execution time, on a clean testbed and under the Table 2 interfering
// traffic, exposing where adding nodes stops paying.

// SweepRow is one (program, nodes) cell.
type SweepRow struct {
	Program   string
	Nodes     int
	CleanTime float64
	BusyTime  float64 // with m-6 <-> m-8 interfering traffic
}

// NodeCountSweep measures FFT(512) and FFT(1K) on 2..8 Remos-selected
// nodes.
func NodeCountSweep() []SweepRow {
	var out []SweepRow
	for _, size := range []int{512, 1024} {
		for nodes := 2; nodes <= 8; nodes++ {
			row := SweepRow{Program: fmt.Sprintf("FFT (%d)", size), Nodes: nodes}
			row.CleanTime = sweepRun(size, nodes, false)
			row.BusyTime = sweepRun(size, nodes, true)
			out = append(out, row)
		}
	}
	return out
}

func sweepRun(size, nodes int, busy bool) float64 {
	sel := NewEnv()
	if busy {
		startInterferingTraffic(sel)
	}
	sel.Warmup()
	set, err := selectNodes(sel, nodes, core.TFHistory(10))
	if err != nil {
		panic(fmt.Sprintf("experiments: sweep selection: %v", err))
	}
	e := NewEnv()
	if busy {
		startInterferingTraffic(e)
	}
	e.Warmup()
	rep := e.RunProgram(fft.Program(size, 1), set, nil)
	return rep.Elapsed()
}

// FormatSweep renders the sweep with per-size speedups.
func FormatSweep(rows []SweepRow) string {
	var b strings.Builder
	b.WriteString("Node-count sweep: FFT execution time vs Remos-selected node count\n")
	fmt.Fprintf(&b, "%-10s %5s | %10s %8s | %10s %8s\n",
		"Program", "N", "clean(s)", "speedup", "busy(s)", "speedup")
	b.WriteString(strings.Repeat("-", 66) + "\n")
	base := map[string][2]float64{}
	for _, r := range rows {
		if r.Nodes == 2 {
			base[r.Program] = [2]float64{r.CleanTime, r.BusyTime}
		}
		bb := base[r.Program]
		fmt.Fprintf(&b, "%-10s %5d | %10.3f %7.2fx | %10.3f %7.2fx\n",
			r.Program, r.Nodes, r.CleanTime, bb[0]/r.CleanTime, r.BusyTime, bb[1]/r.BusyTime)
	}
	return b.String()
}
