package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps/airshed"
	"repro/internal/apps/fft"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fx"
	"repro/internal/graph"
	"repro/internal/topology"
)

// workload describes one program/size row of Tables 1 and 2.
type workload struct {
	Name  string
	Nodes int
	Build func() *fx.Program
}

// tableWorkloads are the six rows of Tables 1 and 2.
func tableWorkloads() []workload {
	return []workload{
		{"FFT (512)", 2, func() *fx.Program { return fft.Program(512, 1) }},
		{"FFT (512)", 4, func() *fx.Program { return fft.Program(512, 1) }},
		{"FFT (1K)", 2, func() *fx.Program { return fft.Program(1024, 1) }},
		{"FFT (1K)", 4, func() *fx.Program { return fft.Program(1024, 1) }},
		{"Airshed", 3, func() *fx.Program { return airshed.Program(airshed.DefaultParams()) }},
		{"Airshed", 5, func() *fx.Program { return airshed.Program(airshed.DefaultParams()) }},
	}
}

// StartNode is the application-provided clustering seed in all the
// paper's experiments.
const StartNode = graph.NodeID("m-4")

// Table1Row is one row of Table 1: performance on Remos-selected nodes
// versus other representative node sets on an unloaded testbed.
type Table1Row struct {
	Program   string
	Nodes     int
	RemosSet  []graph.NodeID
	RemosTime float64
	Alts      []Table1Alt
}

// Table1Alt is one "other representative node set" column.
type Table1Alt struct {
	Set             []graph.NodeID
	Time            float64
	PercentIncrease float64
}

// table1AltSets reproduces the paper's "other representative node sets"
// columns verbatim.
var table1AltSets = map[string][][]graph.NodeID{
	"FFT (512)/2": {{"m-1", "m-4"}, {"m-4", "m-8"}},
	"FFT (512)/4": {{"m-1", "m-2", "m-4", "m-5"}, {"m-1", "m-4", "m-6", "m-7"}},
	"FFT (1K)/2":  {{"m-1", "m-4"}, {"m-4", "m-8"}},
	"FFT (1K)/4":  {{"m-1", "m-2", "m-4", "m-5"}, {"m-1", "m-4", "m-6", "m-7"}},
	"Airshed/3":   {{"m-4", "m-6", "m-8"}, {"m-1", "m-4", "m-7"}},
	"Airshed/5":   {{"m-1", "m-2", "m-3", "m-4", "m-5"}, {"m-1", "m-2", "m-4", "m-5", "m-7"}},
}

func rowKey(w workload) string { return fmt.Sprintf("%s/%d", w.Name, w.Nodes) }

// selectNodes runs the Remos-driven clustering of §7.3 on a fresh
// environment and returns the chosen set.
func selectNodes(e *Env, k int, tf core.Timeframe) ([]graph.NodeID, error) {
	res, err := cluster.FromModeler(e.Mod, topology.TestbedHosts, StartNode, k, cluster.TestbedMetric(), tf)
	if err != nil {
		return nil, err
	}
	return res.Nodes, nil
}

// runOnce executes one program on one node set in a fresh environment,
// optionally starting traffic first, and returns the elapsed seconds.
func runOnce(w workload, nodes []graph.NodeID, startTraffic func(*Env)) float64 {
	e := NewEnv()
	if startTraffic != nil {
		startTraffic(e)
	}
	e.Warmup()
	rep := e.RunProgram(w.Build(), nodes, nil)
	return rep.Elapsed()
}

// Table1 reproduces Table 1: node selection in a static (unloaded)
// environment. Remos-selected sets are computed live; the comparison
// sets are the paper's.
func Table1() []Table1Row {
	var out []Table1Row
	for _, w := range tableWorkloads() {
		// Selection on an unloaded testbed.
		sel := NewEnv()
		sel.Warmup()
		remosSet, err := selectNodes(sel, w.Nodes, core.TFHistory(10))
		if err != nil {
			panic(fmt.Sprintf("experiments: table1 selection: %v", err))
		}
		row := Table1Row{
			Program:   w.Name,
			Nodes:     w.Nodes,
			RemosSet:  remosSet,
			RemosTime: runOnce(w, remosSet, nil),
		}
		for _, alt := range table1AltSets[rowKey(w)] {
			t := runOnce(w, alt, nil)
			row.Alts = append(row.Alts, Table1Alt{
				Set:             alt,
				Time:            t,
				PercentIncrease: 100 * (t - row.RemosTime) / row.RemosTime,
			})
		}
		out = append(out, row)
	}
	return out
}

// FormatTable1 renders the rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: Performance of programs on nodes selected using Remos (unloaded testbed)\n")
	fmt.Fprintf(&b, "%-10s %-3s | %-22s %8s | %-22s %8s %6s | %-22s %8s %6s\n",
		"Program", "N", "Remos set", "time(s)", "alt set 1", "time(s)", "+%", "alt set 2", "time(s)", "+%")
	b.WriteString(strings.Repeat("-", 132) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-3d | %-22s %8.3f", r.Program, r.Nodes, nodeSet(r.RemosSet), r.RemosTime)
		for _, a := range r.Alts {
			fmt.Fprintf(&b, " | %-22s %8.3f %6.1f", nodeSet(a.Set), a.Time, a.PercentIncrease)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// nodeSet renders a node list compactly ("m-4,5,6").
func nodeSet(nodes []graph.NodeID) string {
	var parts []string
	for _, n := range nodes {
		parts = append(parts, strings.TrimPrefix(string(n), "m-"))
	}
	return "m-" + strings.Join(parts, ",")
}
