package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/topology"
)

// Figure1Result captures the §4.3 discussion around Figure 1: the same
// 8-host/2-switch graph behaves completely differently depending on the
// switches' internal bandwidth, and the Remos logical topology exposes
// that.
type Figure1Result struct {
	Config string

	// PairBandwidth is what one host pair (n1 -> n5) can get alone.
	PairBandwidth float64

	// AggregateBandwidth is what four simultaneous cross-switch flows
	// (n1->n5 ... n4->n8) get in total — the paper's "all nodes can send
	// and receive at up to 10 Mbps simultaneously" vs "the aggregate
	// bandwidth will be limited to 10 Mbps".
	AggregateBandwidth float64

	// LogicalLinkCapacity is the capacity of the collapsed logical link
	// between n1 and n5 in remos_get_graph's answer.
	LogicalLinkCapacity float64
}

func figure1For(name string, cfg topology.Figure1Config) Figure1Result {
	e := NewEnvOn(topology.Figure1(cfg))
	e.Warmup()
	out := Figure1Result{Config: name}

	single, err := e.Mod.QueryFlowInfo(nil, nil,
		[]core.Flow{{Src: "n1", Dst: "n5", Kind: core.IndependentFlow}}, core.TFCapacity())
	if err != nil {
		panic(fmt.Sprintf("experiments: figure1: %v", err))
	}
	out.PairBandwidth = single.Independent[0].Bandwidth.Median

	var flows []core.Flow
	for i := 1; i <= 4; i++ {
		flows = append(flows, core.Flow{
			Src:  graph.NodeID(fmt.Sprintf("n%d", i)),
			Dst:  graph.NodeID(fmt.Sprintf("n%d", i+4)),
			Kind: core.IndependentFlow,
		})
	}
	multi, err := e.Mod.QueryFlowInfo(nil, nil, flows, core.TFCapacity())
	if err != nil {
		panic(fmt.Sprintf("experiments: figure1: %v", err))
	}
	for _, r := range multi.Independent {
		out.AggregateBandwidth += r.Bandwidth.Median
	}

	g, err := e.Mod.GetGraph([]graph.NodeID{"n1", "n5"}, core.TFCapacity())
	if err != nil {
		panic(fmt.Sprintf("experiments: figure1: %v", err))
	}
	if len(g.Links) == 1 {
		out.LogicalLinkCapacity = g.Links[0].Capacity.Median
	}
	return out
}

// Figure1 evaluates both readings of the Figure 1 network.
func Figure1() (fast, slow Figure1Result) {
	return figure1For("fast switches (100 Mbps internal)", topology.Figure1FastSwitches()),
		figure1For("slow switches (10 Mbps internal)", topology.Figure1SlowSwitches())
}

// FormatFigure1 renders both scenarios.
func FormatFigure1(fast, slow Figure1Result) string {
	var b strings.Builder
	b.WriteString("Figure 1: logical topology semantics (8 hosts, 2 switches, 10 Mbps host links)\n")
	for _, r := range []Figure1Result{fast, slow} {
		fmt.Fprintf(&b, "  %s:\n", r.Config)
		fmt.Fprintf(&b, "    single pair n1->n5:      %6.1f Mbps\n", r.PairBandwidth/1e6)
		fmt.Fprintf(&b, "    4 simultaneous pairs:    %6.1f Mbps aggregate\n", r.AggregateBandwidth/1e6)
		fmt.Fprintf(&b, "    logical link capacity:   %6.1f Mbps\n", r.LogicalLinkCapacity/1e6)
	}
	return b.String()
}

// Figure4Result is the §8.2 node-selection walkthrough.
type Figure4Result struct {
	TrafficRoute []graph.NodeID
	Start        graph.NodeID
	Selected     []graph.NodeID
}

// Figure4 reproduces Figure 4: with traffic between m-6 and m-8, greedy
// clustering from start node m-4 selects m-1, m-2, m-4, m-5.
func Figure4() Figure4Result {
	e := NewEnv()
	startInterferingTraffic(e)
	e.Warmup()
	sel, err := selectNodes(e, 4, core.TFHistory(10))
	if err != nil {
		panic(fmt.Sprintf("experiments: figure4: %v", err))
	}
	route := e.Net.Routes().Route("m-6", "m-8")
	return Figure4Result{
		TrafficRoute: route.Nodes,
		Start:        StartNode,
		Selected:     sel,
	}
}

// FormatFigure4 renders the selection walkthrough.
func FormatFigure4(r Figure4Result) string {
	var b strings.Builder
	b.WriteString("Figure 4: node selection with busy communication links\n")
	fmt.Fprintf(&b, "  Traffic route: %v\n", pathString(r.TrafficRoute))
	fmt.Fprintf(&b, "  Start node:    %s\n", r.Start)
	fmt.Fprintf(&b, "  Selected:      %s\n", nodeSet(sortedCopy(r.Selected)))
	return b.String()
}

func pathString(nodes []graph.NodeID) string {
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		parts[i] = string(n)
	}
	return strings.Join(parts, " -> ")
}

func sortedCopy(nodes []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), nodes...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
