package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps/airshed"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fx"
	"repro/internal/graph"
	"repro/internal/simclock"
	"repro/internal/topology"
)

// AblationResult compares the adaptive Airshed on an otherwise idle
// testbed with and without self-traffic discounting — the §8.3 fallacy:
// "the application would migrate to avoid its own traffic".
type AblationResult struct {
	// NaiveMigrations/NaiveTime: Remos does not distinguish the app's
	// own traffic (the paper's implementation).
	NaiveMigrations int
	NaiveTime       float64

	// DiscountMigrations/DiscountTime: the app registers its flows and
	// the Modeler discounts them.
	DiscountMigrations int
	DiscountTime       float64
}

// selfAwareAdapter wraps RemosAdapter and registers the program's
// steady-state communication footprint as self flows before every check.
type selfAwareAdapter struct {
	fx.RemosAdapter
	selfRate float64 // approximate per-pair rate of own traffic
}

func (a *selfAwareAdapter) MaybeMigrate(now simclock.Time, iter int, current []graph.NodeID) ([]graph.NodeID, float64) {
	a.Modeler.ClearSelfFlows()
	for _, src := range current {
		for _, dst := range current {
			if src != dst {
				a.Modeler.RegisterSelfFlow(src, dst, a.selfRate)
			}
		}
	}
	return a.RemosAdapter.MaybeMigrate(now, iter, current)
}

// AblationSelfTraffic runs both variants and reports migrations and
// times. The program is given a heavier communication footprint than the
// Table 3 Airshed so that its own traffic visibly loads its links.
func AblationSelfTraffic() AblationResult {
	run := func(discount bool) (int, float64) {
		e := NewEnv()
		if discount {
			e.Mod = core.New(core.Config{Source: e.Col, DiscountSelf: true})
		}
		e.Warmup()
		// A communication-dominated variant: redistribution occupies
		// most of each iteration, so the app's own traffic dominates
		// what the collector measures on its links.
		params := airshed.DefaultParams()
		params.FieldBytes = 512e6
		params.ParallelWork = 120
		params.SerialWork = 24
		prog := airshed.Program(params)

		base := fx.RemosAdapter{
			Modeler: e.Mod,
			Pool:    topology.TestbedHosts,
			Start:   StartNode,
			Metric:  cluster.TestbedMetric(),
			// Latest measurement: maximally responsive, maximally
			// vulnerable to seeing the app's own bursts.
			Timeframe:    core.TFCurrent(),
			Threshold:    0,
			DecisionCost: table3DecisionCost,
		}
		var adapter fx.Adapter = &base
		if discount {
			// Register the approximate per-pair rate of the app's own
			// redistribution traffic (each access link carries ~100 Mbps
			// split over 4 peer flows while redistributing).
			adapter = &selfAwareAdapter{RemosAdapter: base, selfRate: 25e6}
		}
		rep := e.RunProgram(prog, Table3FixedSet, func(rt *fx.Runtime) {
			rt.CompiledNodes = table3CompiledNodes
			rt.OverheadAlpha = table3OverheadAlpha
			rt.MigrationCost = table3MigrationCost
			rt.Adapter = adapter
		})
		return len(rep.Migrations), rep.Elapsed()
	}
	var out AblationResult
	out.NaiveMigrations, out.NaiveTime = run(false)
	out.DiscountMigrations, out.DiscountTime = run(true)
	return out
}

// FormatAblation renders the comparison.
func FormatAblation(r AblationResult) string {
	var b strings.Builder
	b.WriteString("Ablation: self-traffic discounting (§8.3 fallacy) — idle testbed, comm-heavy Airshed\n")
	fmt.Fprintf(&b, "  naive (paper behaviour):   %2d migrations, %6.0f s\n", r.NaiveMigrations, r.NaiveTime)
	fmt.Fprintf(&b, "  self-flows discounted:     %2d migrations, %6.0f s\n", r.DiscountMigrations, r.DiscountTime)
	return b.String()
}
