package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/simclock"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// The prediction study evaluates the Modeler's future-timeframe
// machinery (§4.4: "Remos supports ... prediction of expected future
// performance", with "a simplistic model to predict future performance
// from current and historical data"). For several traffic patterns on
// the timberline->whiteface link, each predictor forecasts the link's
// utilization a horizon ahead; the forecast is scored against the true
// average utilization over that horizon (computed from the simulator's
// exact octet counters).

// PredictorEval is one (pattern, predictor) cell of the study.
type PredictorEval struct {
	Pattern   string
	Predictor string
	MAE       float64 // mean absolute error, bits/s
	N         int     // forecasts scored
}

// predictionPatterns builds the traffic scenarios of the study.
func predictionPatterns() map[string]func(e *Env) {
	return map[string]func(e *Env){
		"steady": func(e *Env) {
			traffic.Blast(e.Net, "m-6", "m-8", 40e6)
		},
		"ramp": func(e *Env) {
			// Rate steps up 10 Mbps every 40 s.
			var cur traffic.Generator
			level := 0.0
			step := func(now simclock.Time) {
				if cur != nil {
					cur.Stop()
				}
				level += 10e6
				if level > 80e6 {
					level = 80e6
				}
				cur = traffic.Blast(e.Net, "m-6", "m-8", level)
			}
			e.Clk.NewTicker(0, 40, "ramp", step)
		},
		"onoff": func(e *Env) {
			traffic.OnOff(e.Net, "m-6", "m-8", traffic.OnOffConfig{
				Rate: 60e6, MeanOn: 8, MeanOff: 8, Seed: 17,
			})
		},
		"poisson": func(e *Env) {
			traffic.PoissonTransfers(e.Net, "m-6", "m-8", traffic.PoissonTransfersConfig{
				MeanInterarrival: 2,
				MinBytes:         1e5,
				MaxBytes:         4e7,
				Seed:             23,
			})
		},
	}
}

// studyPredictors are the forecast models under evaluation.
func studyPredictors() []stats.Predictor {
	return []stats.Predictor{
		stats.LastValue{},
		stats.MovingAverage{K: 8},
		stats.EWMA{Alpha: 0.3},
		stats.LinearTrend{},
	}
}

// PredictionStudy runs every pattern and scores every predictor at a
// 10-second horizon, forecasting every 10 s between t=60 and t=240.
func PredictionStudy() []PredictorEval {
	const (
		horizon  = 10.0
		firstAt  = 60.0
		lastAt   = 240.0
		interval = 10.0
	)
	type observation struct {
		samples []stats.Sample // history available at forecast time
		actual  float64        // true mean utilization over the horizon
	}
	patterns := predictionPatterns()
	names := make([]string, 0, len(patterns))
	for n := range patterns {
		names = append(names, n)
	}
	sort.Strings(names)

	var out []PredictorEval
	for _, name := range names {
		e := NewEnv()
		patterns[name](e)

		topo, err := e.Col.Topology()
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		var key collector.ChannelKey
		var ch graph.Channel
		for _, l := range topo.Graph.Links() {
			if (l.A == "timberline" && l.B == "whiteface") || (l.A == "whiteface" && l.B == "timberline") {
				key = topo.Key(l, l.DirFrom("timberline"))
			}
		}
		for _, l := range e.Net.Graph().Links() {
			if (l.A == "timberline" && l.B == "whiteface") || (l.A == "whiteface" && l.B == "timberline") {
				ch = graph.Channel{Link: l.ID, Dir: l.DirFrom("timberline")}
			}
		}

		var obs []*observation
		for at := firstAt; at <= lastAt; at += interval {
			o := &observation{}
			obs = append(obs, o)
			e.Clk.Schedule(simclock.Time(at), "forecast-point", func(simclock.Time) {
				samples, err := e.Col.Samples(key)
				if err == nil {
					o.samples = append([]stats.Sample(nil), samples...)
				}
				e.Net.Sync()
				startBits := e.Net.ChannelBits(ch)
				e.Clk.After(horizon, "forecast-truth", func(simclock.Time) {
					e.Net.Sync()
					o.actual = (e.Net.ChannelBits(ch) - startBits) / horizon
				})
			})
		}
		e.Clk.RunUntil(simclock.Time(lastAt + horizon + 1))

		for _, p := range studyPredictors() {
			var absErr float64
			n := 0
			for _, o := range obs {
				if len(o.samples) == 0 {
					continue
				}
				pred, _ := p.Predict(o.samples, horizon)
				if pred < 0 {
					pred = 0
				}
				diff := pred - o.actual
				if diff < 0 {
					diff = -diff
				}
				absErr += diff
				n++
			}
			if n > 0 {
				out = append(out, PredictorEval{
					Pattern: name, Predictor: p.Name(),
					MAE: absErr / float64(n), N: n,
				})
			}
		}
	}
	return out
}

// FormatPredictionStudy renders the study as a pattern × predictor MAE
// table (Mbps).
func FormatPredictionStudy(evals []PredictorEval) string {
	patterns := []string{}
	predictors := []string{}
	seenPat := map[string]bool{}
	seenPred := map[string]bool{}
	cell := map[[2]string]PredictorEval{}
	for _, ev := range evals {
		if !seenPat[ev.Pattern] {
			seenPat[ev.Pattern] = true
			patterns = append(patterns, ev.Pattern)
		}
		if !seenPred[ev.Predictor] {
			seenPred[ev.Predictor] = true
			predictors = append(predictors, ev.Predictor)
		}
		cell[[2]string{ev.Pattern, ev.Predictor}] = ev
	}
	var b strings.Builder
	b.WriteString("Prediction study: mean absolute error of 10 s-ahead utilization forecasts (Mbps)\n")
	fmt.Fprintf(&b, "%-10s", "pattern")
	for _, p := range predictors {
		fmt.Fprintf(&b, " %14s", p)
	}
	b.WriteString("\n" + strings.Repeat("-", 10+15*len(predictors)) + "\n")
	for _, pat := range patterns {
		fmt.Fprintf(&b, "%-10s", pat)
		for _, p := range predictors {
			ev := cell[[2]string{pat, p}]
			fmt.Fprintf(&b, " %14.2f", ev.MAE/1e6)
		}
		b.WriteString("\n")
	}
	return b.String()
}
