package experiments

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// These tests assert the *shape* of the paper's results, per the
// reproduction brief: who wins, by roughly what factor, where the
// crossovers fall — not absolute seconds.

func TestFigure1Shape(t *testing.T) {
	t.Parallel()
	fast, slow := Figure1()
	// Fast switches: host links limit; every pair gets its 10 Mbps and
	// four pairs aggregate 40 Mbps.
	if fast.PairBandwidth != 10e6 {
		t.Fatalf("fast pair = %v", fast.PairBandwidth)
	}
	if fast.AggregateBandwidth != 40e6 {
		t.Fatalf("fast aggregate = %v", fast.AggregateBandwidth)
	}
	// Slow switches: the 10 Mbps backplane caps the aggregate.
	if slow.PairBandwidth != 10e6 {
		t.Fatalf("slow pair = %v", slow.PairBandwidth)
	}
	if slow.AggregateBandwidth != 10e6 {
		t.Fatalf("slow aggregate = %v", slow.AggregateBandwidth)
	}
	// Both logical links report 10 Mbps capacity.
	if fast.LogicalLinkCapacity != 10e6 || slow.LogicalLinkCapacity != 10e6 {
		t.Fatalf("logical capacities = %v, %v", fast.LogicalLinkCapacity, slow.LogicalLinkCapacity)
	}
	out := FormatFigure1(fast, slow)
	if !strings.Contains(out, "aggregate") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestFigure4Shape(t *testing.T) {
	t.Parallel()
	r := Figure4()
	want := map[graph.NodeID]bool{"m-1": true, "m-2": true, "m-4": true, "m-5": true}
	if len(r.Selected) != 4 {
		t.Fatalf("selected %v", r.Selected)
	}
	for _, n := range r.Selected {
		if !want[n] {
			t.Fatalf("selected %v, want the paper's m-1,m-2,m-4,m-5", r.Selected)
		}
	}
	if r.Start != "m-4" {
		t.Fatalf("start = %v", r.Start)
	}
	if len(r.TrafficRoute) != 4 || r.TrafficRoute[1] != "timberline" {
		t.Fatalf("traffic route = %v", r.TrafficRoute)
	}
	if !strings.Contains(FormatFigure4(r), "m-1,2,4,5") {
		t.Fatalf("format:\n%s", FormatFigure4(r))
	}
}

func TestTable1Shape(t *testing.T) {
	t.Parallel()
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.RemosSet) != r.Nodes {
			t.Fatalf("%s/%d: selected %v", r.Program, r.Nodes, r.RemosSet)
		}
		if r.RemosTime <= 0 {
			t.Fatalf("%s/%d: time %v", r.Program, r.Nodes, r.RemosTime)
		}
		for _, a := range r.Alts {
			// §8.1: on an unloaded testbed differences are small —
			// "generally (but not always) lower ... but only by
			// relatively small amounts". Allow ±10%.
			if a.PercentIncrease < -10 || a.PercentIncrease > 10 {
				t.Fatalf("%s/%d vs %v: %+.1f%% is not a small difference",
					r.Program, r.Nodes, a.Set, a.PercentIncrease)
			}
		}
	}
	// More nodes must be faster for the same program.
	if rows[1].RemosTime >= rows[0].RemosTime {
		t.Fatalf("FFT(512) did not speed up: %v vs %v", rows[1].RemosTime, rows[0].RemosTime)
	}
	if rows[5].RemosTime >= rows[4].RemosTime {
		t.Fatalf("Airshed did not speed up: %v vs %v", rows[5].RemosTime, rows[4].RemosTime)
	}
	if !strings.Contains(FormatTable1(rows), "Airshed") {
		t.Fatal("format missing rows")
	}
}

func TestTable2Shape(t *testing.T) {
	t.Parallel()
	rows := Table2()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The headline claim: static selection is 80-200 percent slower
		// under traffic. Allow a generous band around it.
		if r.PercentIncrease < 40 || r.PercentIncrease > 250 {
			t.Fatalf("%s/%d: static penalty %.0f%% outside the paper's band",
				r.Program, r.Nodes, r.PercentIncrease)
		}
		// Dynamic selection must avoid the traffic endpoints' links:
		// performance with traffic ≈ performance without (paper: "the
		// performance degrades only marginally").
		if r.DynamicTime > r.CleanTime*1.15 {
			t.Fatalf("%s/%d: dynamic %.3f vs clean %.3f — selection did not avoid traffic",
				r.Program, r.Nodes, r.DynamicTime, r.CleanTime)
		}
		// The dynamic set never contains the traffic source/sink.
		for _, n := range r.DynamicSet {
			if n == "m-6" || n == "m-8" {
				t.Fatalf("%s/%d: dynamic set %v includes a traffic endpoint",
					r.Program, r.Nodes, r.DynamicSet)
			}
		}
	}
	if !strings.Contains(FormatTable2(rows), "static-only") {
		t.Fatal("format wrong")
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long adaptive runs")
	}
	t.Parallel()
	rows := Table3()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	none := byName["No Traffic"]
	noninterf := byName["Non-interfering"]
	i1 := byName["Interfering-1"]
	i2 := byName["Interfering-2"]

	// Adaptation costs a moderate overhead when idle (paper: 941 vs 862,
	// ~9%). Allow 2-20%.
	overhead := (none.AdaptiveTime - none.FixedTime) / none.FixedTime
	if overhead < 0.02 || overhead > 0.20 {
		t.Fatalf("idle adaptation overhead = %.1f%%", overhead*100)
	}
	// Non-interfering traffic leaves both variants approximately alone.
	if noninterf.FixedTime > none.FixedTime*1.1 {
		t.Fatalf("non-interfering hurt the fixed run: %v vs %v", noninterf.FixedTime, none.FixedTime)
	}
	// Interfering traffic hurts the fixed mapping dramatically (paper:
	// +95%, +112%) but the adaptive version stays near its baseline.
	for _, r := range []Table3Row{i1, i2} {
		slowdown := (r.FixedTime - none.FixedTime) / none.FixedTime
		if slowdown < 0.5 {
			t.Fatalf("%s: fixed slowdown only %.0f%%", r.Scenario, slowdown*100)
		}
		if r.AdaptiveTime > none.AdaptiveTime*1.25 {
			t.Fatalf("%s: adaptive %.0f vs idle adaptive %.0f — did not escape traffic",
				r.Scenario, r.AdaptiveTime, none.AdaptiveTime)
		}
		if r.Migrations == 0 {
			t.Fatalf("%s: no migrations", r.Scenario)
		}
		if r.AdaptiveTime >= r.FixedTime {
			t.Fatalf("%s: adaptation did not pay off (%v vs %v)", r.Scenario, r.AdaptiveTime, r.FixedTime)
		}
		// Final nodes avoid the traffic endpoints.
		for _, n := range r.FinalNodes {
			if n == "m-6" || n == "m-7" || n == "m-8" {
				t.Fatalf("%s: final nodes %v on traffic side", r.Scenario, r.FinalNodes)
			}
		}
	}
	// Interfering-2 is at least as harsh as Interfering-1 for the fixed
	// mapping.
	if i2.FixedTime < i1.FixedTime*0.95 {
		t.Fatalf("interfering-2 (%v) unexpectedly milder than interfering-1 (%v)", i2.FixedTime, i1.FixedTime)
	}
	if !strings.Contains(FormatTable3(rows), "Interfering-2") {
		t.Fatal("format wrong")
	}
}

func TestAblationSelfTrafficShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long adaptive runs")
	}
	t.Parallel()
	r := AblationSelfTraffic()
	// The §8.3 fallacy: without discounting the app migrates to avoid
	// its own traffic, repeatedly.
	if r.NaiveMigrations < 2 {
		t.Fatalf("naive migrations = %d; fallacy did not reproduce", r.NaiveMigrations)
	}
	if r.DiscountMigrations >= r.NaiveMigrations {
		t.Fatalf("discounting did not reduce migrations: %d vs %d",
			r.DiscountMigrations, r.NaiveMigrations)
	}
	// The pointless migrations cost real time.
	if r.NaiveTime <= r.DiscountTime {
		t.Fatalf("naive (%v) not slower than discounted (%v)", r.NaiveTime, r.DiscountTime)
	}
	if !strings.Contains(FormatAblation(r), "migrations") {
		t.Fatal("format wrong")
	}
}

func TestEnvHelpers(t *testing.T) {
	t.Parallel()
	e := NewEnv()
	e.Warmup()
	if e.Col.Polls() < 5 {
		t.Fatalf("polls after warmup = %d", e.Col.Polls())
	}
	if got := nodeSet([]graph.NodeID{"m-4", "m-5"}); got != "m-4,5" {
		t.Fatalf("nodeSet = %q", got)
	}
	if got := pathString([]graph.NodeID{"a", "b"}); got != "a -> b" {
		t.Fatalf("pathString = %q", got)
	}
	s := sortedCopy([]graph.NodeID{"m-5", "m-1", "m-4"})
	if s[0] != "m-1" || s[2] != "m-5" {
		t.Fatalf("sortedCopy = %v", s)
	}
}
