package experiments

import (
	"fmt"
	"strings"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// The overhead study quantifies §1's claim that "the cost that an
// application pays in terms of runtime overhead is low and directly
// related to the depth and frequency of its requests for network
// information": for a range of collector poll periods, it measures the
// SNMP request rate the testbed's agents see (the monitoring cost) and
// how quickly the Modeler notices a traffic change (the responsiveness
// the application buys with that cost).

// OverheadResult is one poll-period configuration.
type OverheadResult struct {
	PollPeriod float64

	// SNMPRequestsPerMinute is the aggregate request rate across all 11
	// agents during steady polling.
	SNMPRequestsPerMinute float64

	// DetectionDelay is how long after traffic starts the Modeler's
	// current-timeframe availability first drops below half capacity.
	DetectionDelay float64
}

// OverheadStudy sweeps collector poll periods.
func OverheadStudy() []OverheadResult {
	var out []OverheadResult
	for _, period := range []float64{0.5, 1, 2, 5, 10} {
		out = append(out, overheadFor(period))
	}
	return out
}

func overheadFor(period float64) OverheadResult {
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := collector.New(collector.Config{
		Client:        snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:         clk,
		Addrs:         addrs,
		PollPeriod:    period,
		PerHopLatency: topology.PerHopLatency,
	})
	if err := col.Start(); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	mod := core.New(core.Config{Source: col})

	// Steady-state request rate over one minute.
	requestsAt := func() uint64 {
		var sum uint64
		for _, a := range att.Agents {
			sum += a.Requests()
		}
		return sum
	}
	clk.Advance(30) // settle
	before := requestsAt()
	clk.Advance(60)
	perMinute := float64(requestsAt() - before)

	// Detection delay: traffic starts at t0; sample the modeler every
	// 0.25 s until the current availability halves.
	t0 := clk.Now()
	traffic.Blast(n, "m-6", "m-8", 90e6)
	detected := -1.0
	for step := 0; step < 400; step++ {
		clk.Advance(0.25)
		st, err := mod.AvailableBandwidth("m-4", "m-7", core.TFCurrent())
		if err != nil {
			continue
		}
		if st.Valid() && st.Median < 50e6 {
			detected = float64(clk.Now() - t0)
			break
		}
	}
	return OverheadResult{
		PollPeriod:            period,
		SNMPRequestsPerMinute: perMinute,
		DetectionDelay:        detected,
	}
}

// FormatOverheadStudy renders the sweep.
func FormatOverheadStudy(rs []OverheadResult) string {
	var b strings.Builder
	b.WriteString("Overhead study: collector poll period vs monitoring cost and responsiveness\n")
	fmt.Fprintf(&b, "%12s | %22s | %16s\n", "poll period", "SNMP requests / min", "detection delay")
	b.WriteString(strings.Repeat("-", 60) + "\n")
	for _, r := range rs {
		det := fmt.Sprintf("%.2f s", r.DetectionDelay)
		if r.DetectionDelay < 0 {
			det = "never"
		}
		fmt.Fprintf(&b, "%10.1f s | %22.0f | %16s\n", r.PollPeriod, r.SNMPRequestsPerMinute, det)
	}
	return b.String()
}
