package experiments

import (
	"math"
	"testing"

	"repro/internal/netsim"
	"repro/internal/packetsim"
	"repro/internal/simclock"
)

// Cross-model validation: the same Table 2-style scenario — a transfer
// crossing a link occupied by priority blast traffic — is run through
// the fluid simulator (which the experiments use) and through the
// packet-level simulator (store-and-forward, DRR). The completion times
// must agree closely, which is the direct evidence for DESIGN.md's claim
// that the fluid substitution preserves the behaviour the tables
// measure.

// fluidTransferTime runs the scenario in netsim: a 3-hop path whose
// middle link carries a 90 Mbps priority blast, then a finite transfer.
func fluidTransferTime(t *testing.T, transferBytes float64) float64 {
	t.Helper()
	e := NewEnv()
	e.Net.StartFlow(netsim.FlowSpec{Src: "m-6", Dst: "m-8", RateCap: 90e6, Priority: true, Owner: "traffic"})
	e.Clk.Advance(1)
	start := e.Clk.Now()
	var done simclock.Time
	e.Net.StartFlow(netsim.FlowSpec{
		Src: "m-4", Dst: "m-7", Bytes: transferBytes, Owner: "app",
		OnComplete: func(now simclock.Time, f *netsim.Flow) { done = now },
	})
	e.Clk.Advance(1000)
	if done == 0 {
		t.Fatal("fluid transfer never completed")
	}
	return float64(done - start)
}

// packetTransferTime runs the equivalent packet-level scenario: the
// m-4 -> m-7 path is [m4->timberline, timberline->whiteface,
// whiteface->m7]; the blast shares only the middle link (its own first
// and last hops are distinct access links, modeled too).
func packetTransferTime(t *testing.T, transferBytes float64) float64 {
	t.Helper()
	clk := simclock.New()
	n := packetsim.New(clk)
	m4t := packetsim.NewLink("m4-t", 100e6, 1500)
	tw := packetsim.NewLink("t-w", 100e6, 1500)
	wm7 := packetsim.NewLink("w-m7", 100e6, 1500)
	m6t := packetsim.NewLink("m6-t", 100e6, 1500)
	wm8 := packetsim.NewLink("w-m8", 100e6, 1500)

	n.AddFlow(&packetsim.Flow{
		Path: []*packetsim.Link{m6t, tw, wm8},
		Kind: packetsim.CBR, Rate: 90e6, Priority: true,
	})
	clk.Advance(1)
	xfer := n.AddFlow(&packetsim.Flow{
		Path: []*packetsim.Link{m4t, tw, wm7},
		Kind: packetsim.Finite, TotalBytes: transferBytes,
	})
	start := clk.Now()
	for step := 0; step < 400; step++ {
		clk.Advance(2.5)
		if xfer.Delivered() >= transferBytes {
			break
		}
	}
	if xfer.Delivered() < transferBytes {
		t.Fatal("packet transfer never completed")
	}
	// Binary-search the completion instant is overkill; refine by
	// rerunning the last window in fine steps.
	return float64(clk.Now() - start)
}

func TestFluidMatchesPacketLevelUnderBlast(t *testing.T) {
	t.Parallel()
	const transfer = 5e6 // 5 MB through ~10 Mbps leftover ≈ 4 s
	fluid := fluidTransferTime(t, transfer)
	packet := packetTransferTime(t, transfer)
	// The packet measurement is quantized to 2.5 s steps; compare with
	// that slack plus 10% model tolerance.
	if math.Abs(fluid-packet) > 0.1*fluid+2.5 {
		t.Fatalf("fluid %v s vs packet-level %v s", fluid, packet)
	}
	// Sanity: the transfer was actually throttled (~10x slower than on
	// an idle link).
	if fluid < 3 {
		t.Fatalf("fluid transfer too fast (%v s) — blast had no effect?", fluid)
	}
}

func TestFluidMatchesPacketLevelClean(t *testing.T) {
	t.Parallel()
	// Without the blast, both models give bytes/capacity.
	const transfer = 25e6
	e := NewEnv()
	var done simclock.Time
	start := e.Clk.Now()
	e.Net.StartFlow(netsim.FlowSpec{
		Src: "m-4", Dst: "m-7", Bytes: transfer, Owner: "app",
		OnComplete: func(now simclock.Time, f *netsim.Flow) { done = now },
	})
	e.Clk.Advance(100)
	fluid := float64(done - start)

	clk := simclock.New()
	n := packetsim.New(clk)
	links := []*packetsim.Link{
		packetsim.NewLink("a", 100e6, 1500),
		packetsim.NewLink("b", 100e6, 1500),
		packetsim.NewLink("c", 100e6, 1500),
	}
	xfer := n.AddFlow(&packetsim.Flow{Path: links, Kind: packetsim.Finite, TotalBytes: transfer})
	pstart := clk.Now()
	for xfer.Delivered() < transfer {
		clk.Advance(0.1)
	}
	packet := float64(clk.Now() - pstart)

	// Store-and-forward adds ~2 packet times of pipeline fill; both
	// should be ~2.0 s.
	if math.Abs(fluid-2.0) > 1e-6 {
		t.Fatalf("fluid = %v", fluid)
	}
	if math.Abs(packet-fluid) > 0.15 {
		t.Fatalf("packet %v vs fluid %v", packet, fluid)
	}
}
