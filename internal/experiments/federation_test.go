package experiments

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/graph"
)

// TestFederationThousandNodeAcceptance is the headline scenario: a
// seeded 3-region × 1k-node federation answers an intra-region flow
// query at full fidelity and a cross-region flow query via summarized
// links, survives one region going dark — degraded answers with a
// growing DataAge — and recovers when the region heals. Deterministic:
// same spec, same virtual schedule, same answers.
func TestFederationThousandNodeAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-node federation in -short mode")
	}
	t.Parallel()
	e := NewFederationEnv(scaleSpec(1000))

	var dark atomic.Bool
	darkRegion := e.Topo.Regions[2]
	gate := federation.FuncPeer(darkRegion, func() (*collector.RegionSummary, error) {
		if dark.Load() {
			return nil, errors.New("region unreachable")
		}
		return e.Regions[2].RegionSummary()
	})
	v := federation.NewView(federation.Config{
		Region: e.Regions[0],
		Peers:  []federation.Peer{federation.SourcePeer(e.Regions[1]), gate},
		Clock:  e.Clk,
	})
	mod := core.New(core.Config{Source: v})
	e.Warmup()

	r0 := e.Topo.Hosts(e.Topo.Regions[0])
	r2 := e.Topo.Hosts(darkRegion)
	intra, err := mod.AvailableBandwidth(r0[0], r0[len(r0)-1], core.TFHistory(10))
	if err != nil {
		t.Fatalf("intra-region: %v", err)
	}
	if !intra.Valid() || intra.Median <= 0 {
		t.Fatalf("intra-region stat = %+v", intra)
	}
	cross, err := mod.AvailableBandwidth(r0[0], r2[0], core.TFHistory(10))
	if err != nil {
		t.Fatalf("cross-region: %v", err)
	}
	if !cross.Valid() || cross.Median <= 0 {
		t.Fatalf("cross-region stat = %+v", cross)
	}

	ageOf := func() float64 {
		for _, ra := range v.RegionAges() {
			if ra.Region == darkRegion {
				return ra.Age
			}
		}
		t.Fatalf("no age for %s", darkRegion)
		return 0
	}
	stateOf := func() collector.HealthState {
		return v.Health()[graph.NodeID("federation/region-"+darkRegion)].State
	}

	// Dark: answers continue from the last summary, age grows, health
	// degrades to Down.
	dark.Store(true)
	base := ageOf()
	for i := 0; stateOf() != collector.Down; i++ {
		e.Clk.Advance(2)
		if i > 50 {
			t.Fatal("dark region never reached Down")
		}
	}
	grown := ageOf()
	if grown <= base {
		t.Fatalf("DataAge did not grow while dark: %v <= %v", grown, base)
	}
	mod.Refresh()
	st, err := mod.AvailableBandwidth(r0[0], r2[0], core.TFHistory(10))
	if err != nil {
		t.Fatalf("dark cross-region query refused: %v", err)
	}
	if !st.Valid() || st.Median <= 0 {
		t.Fatalf("dark cross-region stat = %+v", st)
	}

	// Heal: health recovers, age collapses, answers keep flowing.
	dark.Store(false)
	for i := 0; stateOf() != collector.Healthy; i++ {
		e.Clk.Advance(2)
		if i > 100 {
			t.Fatal("region never healed")
		}
	}
	if age := ageOf(); age >= grown {
		t.Fatalf("DataAge did not collapse on heal: %v >= %v", age, grown)
	}
	if _, err := mod.AvailableBandwidth(r0[0], r2[0], core.TFHistory(10)); err != nil {
		t.Fatalf("healed cross-region: %v", err)
	}
}
