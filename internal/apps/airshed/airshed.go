// Package airshed models the paper's second benchmark application: the
// Airshed pollution simulation [Subhlok et al., IPPS'98], which "contains
// a rich set of computation and communication operations, as it simulates
// diverse chemical and physical phenomena".
//
// Two things live here:
//
//  1. A real (miniature) airshed kernel — 2-D advection of chemical
//     species with a simple reaction step — used by the examples and
//     validated by conservation tests. It is a stand-in for the closed
//     CIT airshed code.
//  2. The performance model (Program): an iterative Fx program whose
//     phase structure follows the real Airshed (transport and chemistry
//     phases separated by data redistributions) with compute and
//     communication constants calibrated to the paper's Table 1
//     (see EXPERIMENTS.md for the fit).
package airshed

import (
	"fmt"

	"repro/internal/fx"
)

// Params calibrates the performance model.
type Params struct {
	// Iterations is the number of outer simulation steps.
	Iterations int

	// ParallelWork is the total perfectly-parallel compute work over the
	// whole run (work units; split across nodes and iterations).
	ParallelWork float64

	// SerialWork is the total non-scaling compute work over the run
	// (every node performs its share each iteration regardless of P).
	SerialWork float64

	// FieldBytes is the size of the concentration field redistributed
	// between phase decompositions.
	FieldBytes float64

	// Redistributions is how many all-to-all redistributions of the
	// field happen per iteration (transport-x, transport-y, vertical,
	// chemistry = 4 in the real code).
	Redistributions int

	// BroadcastBytes is the per-iteration meteorology broadcast from the
	// master node.
	BroadcastBytes float64

	// GatherBytes is the per-iteration result gather to the master.
	GatherBytes float64
}

// DefaultParams is calibrated against the paper's Table 1: Airshed on 3
// nodes ≈ 908 s and on 5 nodes ≈ 650 s on an unloaded testbed. The
// ParallelWork/SerialWork split comes from solving the two Table 1 rows
// after subtracting the modeled communication time; the field size
// approximates the CIT airshed concentration array (grid × species ×
// float64, rounded up so Table 2's congestion penalties land in the
// paper's 130-160 % band); see EXPERIMENTS.md for the full fit.
func DefaultParams() Params {
	return Params{
		Iterations:      24,
		ParallelWork:    1702,
		SerialWork:      226,
		FieldBytes:      64e6,
		Redistributions: 4,
		BroadcastBytes:  2e6,
		GatherBytes:     1e6,
	}
}

// Program builds the Fx program for the airshed model.
func Program(p Params) *fx.Program {
	if p.Iterations <= 0 {
		panic(fmt.Sprintf("airshed: %d iterations", p.Iterations))
	}
	iters := float64(p.Iterations)
	redis := fx.AllToAllTotal(p.FieldBytes)
	steps := []fx.Step{
		{
			Name:        "met-broadcast",
			Comm:        fx.Broadcast(p.BroadcastBytes),
			WorkPerNode: func(int) float64 { return p.SerialWork / iters / 2 },
		},
	}
	// Transport/chemistry phases, each preceded by a redistribution.
	for i := 0; i < p.Redistributions; i++ {
		i := i
		steps = append(steps, fx.Step{
			Name: fmt.Sprintf("redistribute-%d", i),
			Comm: redis,
		}, fx.Step{
			Name: fmt.Sprintf("phase-%d", i),
			WorkPerNode: func(nodes int) float64 {
				return p.ParallelWork / iters / float64(p.Redistributions) / float64(nodes)
			},
		})
	}
	steps = append(steps, fx.Step{
		Name:        "gather",
		Comm:        fx.Gather(p.GatherBytes),
		WorkPerNode: func(int) float64 { return p.SerialWork / iters / 2 },
	})
	return &fx.Program{
		Name:       "Airshed",
		Iterations: p.Iterations,
		Steps:      steps,
	}
}

// Miniature real kernel ---------------------------------------------------

// Grid is a 2-D periodic domain carrying per-cell concentrations of
// several chemical species.
type Grid struct {
	N       int         // grid is N×N
	Species int         // concentration fields
	C       [][]float64 // C[s][cell], row-major
}

// NewGrid allocates a grid with all concentrations zero.
func NewGrid(n, species int) *Grid {
	if n <= 0 || species <= 0 {
		panic(fmt.Sprintf("airshed: bad grid %d×%d species %d", n, n, species))
	}
	g := &Grid{N: n, Species: species, C: make([][]float64, species)}
	for s := range g.C {
		g.C[s] = make([]float64, n*n)
	}
	return g
}

// Set assigns a concentration.
func (g *Grid) Set(s, x, y int, v float64) { g.C[s][y*g.N+x] = v }

// At reads a concentration.
func (g *Grid) At(s, x, y int) float64 { return g.C[s][y*g.N+x] }

// TotalMass returns the summed concentration of a species.
func (g *Grid) TotalMass(s int) float64 {
	var sum float64
	for _, v := range g.C[s] {
		sum += v
	}
	return sum
}

// Advect performs one first-order upwind advection step with periodic
// boundaries. (u, v) is the wind in cells/step, restricted to |u|,|v| <= 1
// for stability (CFL).
func (g *Grid) Advect(u, v float64) {
	if u < -1 || u > 1 || v < -1 || v > 1 {
		panic(fmt.Sprintf("airshed: CFL violation u=%v v=%v", u, v))
	}
	n := g.N
	for s := range g.C {
		src := g.C[s]
		dst := make([]float64, len(src))
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				c := src[y*n+x]
				// Upwind differences, periodic wrap.
				var flowX, flowY float64
				if u >= 0 {
					flowX = u * (c - src[y*n+(x-1+n)%n])
				} else {
					flowX = u * (src[y*n+(x+1)%n] - c)
				}
				if v >= 0 {
					flowY = v * (c - src[((y-1+n)%n)*n+x])
				} else {
					flowY = v * (src[((y+1)%n)*n+x] - c)
				}
				dst[y*n+x] = c - flowX - flowY
			}
		}
		g.C[s] = dst
	}
}

// React applies a linear two-species chemistry step: species 0 converts
// into species 1 at the given rate fraction per step. With more species,
// each species s feeds s+1. Total mass is conserved.
func (g *Grid) React(rate float64) {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("airshed: reaction rate %v out of [0,1]", rate))
	}
	for s := 0; s+1 < g.Species; s++ {
		a, b := g.C[s], g.C[s+1]
		for i := range a {
			dx := a[i] * rate
			a[i] -= dx
			b[i] += dx
		}
	}
}

// Step runs one advect+react step.
func (g *Grid) Step(u, v, rate float64) {
	g.Advect(u, v)
	g.React(rate)
}
