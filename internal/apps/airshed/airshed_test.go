package airshed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProgramShape(t *testing.T) {
	p := Program(DefaultParams())
	if p.Name != "Airshed" || p.Iterations != 24 {
		t.Fatalf("program = %+v", p)
	}
	// broadcast + 4×(redistribute+phase) + gather = 10 steps.
	if len(p.Steps) != 10 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	// Parallel phases scale with node count.
	var phaseIdx int
	for i, s := range p.Steps {
		if s.Name == "phase-0" {
			phaseIdx = i
		}
	}
	w3 := p.Steps[phaseIdx].WorkPerNode(3)
	w5 := p.Steps[phaseIdx].WorkPerNode(5)
	if math.Abs(w3/w5-5.0/3.0) > 1e-12 {
		t.Fatalf("scaling: %v vs %v", w3, w5)
	}
	// Serial work does not scale.
	if p.Steps[0].WorkPerNode(3) != p.Steps[0].WorkPerNode(5) {
		t.Fatal("serial phase scales with nodes")
	}
}

func TestProgramTotalWorkMatchesCalibration(t *testing.T) {
	// Summing work across phases and iterations must recover the
	// calibration totals: ParallelWork/P + SerialWork.
	pr := DefaultParams()
	p := Program(pr)
	for _, nodes := range []int{3, 5} {
		var total float64
		for _, s := range p.Steps {
			if s.WorkPerNode != nil {
				total += s.WorkPerNode(nodes)
			}
		}
		total *= float64(p.Iterations)
		want := pr.ParallelWork/float64(nodes) + pr.SerialWork
		if math.Abs(total-want) > 1e-6 {
			t.Fatalf("nodes=%d total work %v, want %v", nodes, total, want)
		}
	}
}

func TestProgramPanicsOnBadIterations(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Program(Params{})
}

func TestGridBasics(t *testing.T) {
	g := NewGrid(8, 2)
	g.Set(0, 3, 4, 2.5)
	if g.At(0, 3, 4) != 2.5 {
		t.Fatal("Set/At broken")
	}
	if g.TotalMass(0) != 2.5 || g.TotalMass(1) != 0 {
		t.Fatal("TotalMass wrong")
	}
}

func TestAdvectMovesPlume(t *testing.T) {
	g := NewGrid(8, 1)
	g.Set(0, 2, 2, 1)
	g.Advect(1, 0) // full-cell eastward wind
	if g.At(0, 3, 2) != 1 || g.At(0, 2, 2) != 0 {
		t.Fatalf("plume did not move east: center=%v east=%v", g.At(0, 2, 2), g.At(0, 3, 2))
	}
	g.Advect(0, -1) // northward (negative y)
	if g.At(0, 3, 1) != 1 {
		t.Fatal("plume did not move north")
	}
}

func TestAdvectPeriodicWrap(t *testing.T) {
	g := NewGrid(4, 1)
	g.Set(0, 3, 0, 1)
	g.Advect(1, 0)
	if g.At(0, 0, 0) != 1 {
		t.Fatal("no periodic wrap")
	}
}

func TestAdvectConservesMassProperty(t *testing.T) {
	f := func(seed uint8, uRaw, vRaw uint8) bool {
		g := NewGrid(8, 2)
		// Deterministic pseudo-random field from the seed.
		v := float64(seed)
		for s := 0; s < g.Species; s++ {
			for i := range g.C[s] {
				v = math.Mod(v*1103515245+12345, 1000)
				g.C[s][i] = v / 1000
			}
		}
		m0, m1 := g.TotalMass(0), g.TotalMass(1)
		u := float64(uRaw)/255*2 - 1
		w := float64(vRaw)/255*2 - 1
		for step := 0; step < 5; step++ {
			g.Advect(u, w)
		}
		return math.Abs(g.TotalMass(0)-m0) < 1e-9 && math.Abs(g.TotalMass(1)-m1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReactConservesTotalMassAndConverts(t *testing.T) {
	g := NewGrid(4, 3)
	for i := range g.C[0] {
		g.C[0][i] = 1
	}
	before := g.TotalMass(0) + g.TotalMass(1) + g.TotalMass(2)
	g.React(0.25)
	after := g.TotalMass(0) + g.TotalMass(1) + g.TotalMass(2)
	if math.Abs(before-after) > 1e-12 {
		t.Fatalf("mass changed %v -> %v", before, after)
	}
	if g.TotalMass(0) >= before {
		t.Fatal("no conversion happened")
	}
	if g.TotalMass(1) <= 0 {
		t.Fatal("species 1 not produced")
	}
}

func TestReactFullConversion(t *testing.T) {
	g := NewGrid(2, 2)
	g.Set(0, 0, 0, 1)
	g.React(1)
	if g.TotalMass(0) != 0 || g.TotalMass(1) != 1 {
		t.Fatalf("full conversion failed: %v, %v", g.TotalMass(0), g.TotalMass(1))
	}
}

func TestStepCombined(t *testing.T) {
	g := NewGrid(8, 2)
	g.Set(0, 4, 4, 1)
	g.Step(0.5, 0.5, 0.1)
	total := g.TotalMass(0) + g.TotalMass(1)
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("total mass = %v", total)
	}
}

func TestPanicsOnBadKernelInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad grid": func() { NewGrid(0, 1) },
		"cfl":      func() { NewGrid(4, 1).Advect(2, 0) },
		"bad rate": func() { NewGrid(4, 2).React(1.5) },
		"neg rate": func() { NewGrid(4, 2).React(-0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkAdvect64(b *testing.B) {
	g := NewGrid(64, 4)
	for s := range g.C {
		for i := range g.C[s] {
			g.C[s][i] = float64(i % 13)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Advect(0.5, -0.25)
	}
}
