package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	worst := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestTransformMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randomSignal(n, int64(n))
		want := DFT(x)
		got := append([]complex128(nil), x...)
		Transform(got)
		if err := maxErr(got, want); err > 1e-9*float64(n) {
			t.Fatalf("n=%d: max error %v", n, err)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	x := randomSignal(128, 7)
	y := append([]complex128(nil), x...)
	Transform(y)
	Inverse(y)
	if err := maxErr(x, y); err > 1e-12*128 {
		t.Fatalf("round trip error %v", err)
	}
}

func TestTransformKnownValues(t *testing.T) {
	// FFT of an impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	Transform(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v", i, v)
		}
	}
	// FFT of a constant is an impulse of size N.
	c := []complex128{1, 1, 1, 1}
	Transform(c)
	if cmplx.Abs(c[0]-4) > 1e-12 || cmplx.Abs(c[1]) > 1e-12 {
		t.Fatalf("constant FFT = %v", c)
	}
}

func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := randomSignal(64, seed)
		var timeEnergy float64
		for _, v := range x {
			timeEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		Transform(x)
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(freqEnergy/64-timeEnergy) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := randomSignal(32, seed)
		b := randomSignal(32, seed+1)
		sum := make([]complex128, 32)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		Transform(a)
		Transform(b)
		Transform(sum)
		for i := range sum {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Transform(make([]complex128, 6))
}

func TestTranspose(t *testing.T) {
	m := []complex128{1, 2, 3, 4, 5, 6, 7, 8, 9}
	Transpose(m, 3)
	want := []complex128{1, 4, 7, 2, 5, 8, 3, 6, 9}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("transpose = %v", m)
		}
	}
}

func TestTransform2DRoundTripViaSeparability(t *testing.T) {
	// 2-D FFT must equal row-wise DFT followed by column-wise DFT.
	n := 8
	m := make([]complex128, n*n)
	rng := rand.New(rand.NewSource(3))
	for i := range m {
		m[i] = complex(rng.Float64(), 0)
	}
	want := make([]complex128, n*n)
	copy(want, m)
	// Reference: DFT rows, then DFT columns.
	for r := 0; r < n; r++ {
		copy(want[r*n:(r+1)*n], DFT(want[r*n:(r+1)*n]))
	}
	col := make([]complex128, n)
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			col[r] = want[r*n+c]
		}
		out := DFT(col)
		for r := 0; r < n; r++ {
			want[r*n+c] = out[r]
		}
	}
	Transform2D(m, n)
	if err := maxErr(m, want); err > 1e-9 {
		t.Fatalf("2D error %v", err)
	}
}

func TestTransform2DPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Transform2D(make([]complex128, 10), 3)
}

func TestProgramShape(t *testing.T) {
	p := Program(512, 1)
	if p.Name != "FFT(512)" || p.Iterations != 1 || len(p.Steps) != 3 {
		t.Fatalf("program = %+v", p)
	}
	// Compute scales down with nodes.
	w2 := p.Steps[0].WorkPerNode(2)
	w4 := p.Steps[0].WorkPerNode(4)
	if math.Abs(w2/w4-2) > 1e-12 {
		t.Fatalf("work scaling: %v vs %v", w2, w4)
	}
	if TransposeBytes(512) != 512*512*16 {
		t.Fatalf("transpose bytes = %v", TransposeBytes(512))
	}
}

func TestProgramPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Program(100, 1)
}

func BenchmarkTransform1K(b *testing.B) {
	x := randomSignal(1024, 1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Transform(x)
	}
}

func BenchmarkTransform2D256(b *testing.B) {
	n := 256
	m := make([]complex128, n*n)
	for i := range m {
		m[i] = complex(float64(i%17), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transform2D(m, n)
	}
}
