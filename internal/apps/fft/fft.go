// Package fft implements the paper's first benchmark application: a
// two-dimensional fast Fourier transform "parallelized such that it
// consists of a set of independent 1-dimensional row FFTs, followed by a
// transpose, and a set of independent 1-dimensional column FFTs" (§8).
//
// The package contains both the real algorithm (an iterative radix-2
// complex FFT, usable on actual data) and the performance model
// (Program) that the Fx runtime executes on the simulated testbed. The
// model's communication volume is exact — transposing an N×N complex128
// matrix moves N²·16·(P-1)/P² bytes per node — and its compute constant
// is calibrated against the paper's Table 1 (see EXPERIMENTS.md).
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"repro/internal/fx"
)

// Transform computes the in-place forward FFT of x. len(x) must be a
// power of two.
func Transform(x []complex128) {
	transform(x, false)
}

// Inverse computes the in-place inverse FFT of x (normalized by 1/N).
func Inverse(x []complex128) {
	transform(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		angle := 2 * math.Pi / float64(size)
		if !inverse {
			angle = -angle
		}
		wStep := cmplx.Exp(complex(0, angle))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// Transform2D computes the in-place forward 2-D FFT of an n×n matrix
// stored in row-major order: row FFTs, transpose, column FFTs (as row
// FFTs on the transposed data), transpose back — exactly the structure
// the parallel version distributes.
func Transform2D(m []complex128, n int) {
	if len(m) != n*n {
		panic(fmt.Sprintf("fft: matrix length %d != %d²", len(m), n))
	}
	for r := 0; r < n; r++ {
		Transform(m[r*n : (r+1)*n])
	}
	Transpose(m, n)
	for r := 0; r < n; r++ {
		Transform(m[r*n : (r+1)*n])
	}
	Transpose(m, n)
}

// Transpose transposes an n×n row-major matrix in place.
func Transpose(m []complex128, n int) {
	for r := 0; r < n; r++ {
		for c := r + 1; c < n; c++ {
			m[r*n+c], m[c*n+r] = m[c*n+r], m[r*n+c]
		}
	}
}

// DFT is the O(N²) reference transform used to validate Transform.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// Performance model ------------------------------------------------------

// WorkPerPhase is the calibrated compute cost, in work units, of one FFT
// pass (all rows or all columns) over an N×N matrix: C·N²·log2(N), with
// C fitted so a testbed host (power 1.0) reproduces the paper's Table 1
// single-phase times.
const workConstant = 2.0e-7

// PhaseWork returns the total compute work of one row/column pass.
func PhaseWork(n int) float64 {
	return workConstant * float64(n) * float64(n) * math.Log2(float64(n))
}

// TransposeBytes returns the total bytes crossing the network in the
// distributed transpose of an N×N complex128 matrix (the on-diagonal
// blocks stay local, handled by AllToAllTotal's per-pair division).
func TransposeBytes(n int) float64 {
	return float64(n) * float64(n) * 16
}

// Program builds the Fx program for `iterations` repetitions of a 2-D
// FFT of size n×n: row FFTs (compute) → transpose (all-to-all) → column
// FFTs (compute). The paper times one transform per run.
func Program(n, iterations int) *fx.Program {
	if n&(n-1) != 0 || n <= 0 {
		panic(fmt.Sprintf("fft: size %d is not a power of two", n))
	}
	phase := PhaseWork(n)
	return &fx.Program{
		Name:       fmt.Sprintf("FFT(%d)", n),
		Iterations: iterations,
		Steps: []fx.Step{
			{
				Name:        "row-ffts",
				WorkPerNode: func(p int) float64 { return phase / float64(p) },
			},
			{
				Name: "transpose",
				Comm: fx.AllToAllTotal(TransposeBytes(n)),
			},
			{
				Name:        "col-ffts",
				WorkPerNode: func(p int) float64 { return phase / float64(p) },
			},
		},
	}
}
